"""The finite-tree representation of o-values (Section 2.1 of the paper).

The paper observes that o-values can be represented by finite trees with
three kinds of nodes:

1. leaf nodes labelled by an element of ``D ∪ O``,
2. tuple nodes labelled ``×`` whose outgoing arcs carry distinct attributes,
3. set nodes labelled ``*`` whose children are roots of *distinct* subtrees
   (guaranteeing duplicate elimination).

:class:`ValueTree` makes that representation explicit and reversible. It is
used by the value-based model (Section 7) as the finite prefix language of
regular infinite trees, by pretty-printers, and by tests that check the
structural claims (branching factor, depth) directly on trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import OValueError
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant, sort_key

#: Node kinds.
LEAF = "leaf"
TUPLE = "tuple"
SET = "set"


@dataclass(frozen=True)
class ValueTree:
    """An immutable tree node.

    ``kind`` is one of :data:`LEAF`, :data:`TUPLE`, :data:`SET`.
    For a leaf, ``label`` is the constant or oid. For a tuple node,
    ``children`` is a tuple of ``(attribute, subtree)`` pairs in canonical
    attribute order; for a set node the attribute slots are ``None`` and the
    subtrees are pairwise distinct and canonically ordered.
    """

    kind: str
    label: Optional[OValue] = None
    children: Tuple[Tuple[Optional[str], "ValueTree"], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.kind == LEAF:
            if self.children:
                raise OValueError("leaf nodes have no children")
            if not (isinstance(self.label, Oid) or is_constant(self.label)):
                raise OValueError(f"leaf label must be a constant or oid, got {self.label!r}")
        elif self.kind == TUPLE:
            attrs = [attr for attr, _ in self.children]
            if None in attrs:
                raise OValueError("tuple arcs must be labelled by attributes")
            if len(set(attrs)) != len(attrs):
                raise OValueError("tuple arcs must carry distinct attributes")
        elif self.kind == SET:
            if any(attr is not None for attr, _ in self.children):
                raise OValueError("set arcs are unlabelled")
            subtrees = [child for _, child in self.children]
            if len(set(subtrees)) != len(subtrees):
                raise OValueError("the children of a set node must be distinct subtrees")
        else:
            raise OValueError(f"unknown node kind {self.kind!r}")

    # -- structural measures -------------------------------------------------

    @property
    def out_degree(self) -> int:
        return len(self.children)

    def depth(self) -> int:
        """Leaf depth is 0; a constructor node adds one level."""
        if not self.children and self.kind == LEAF:
            return 0
        if not self.children:
            return 1
        return 1 + max(child.depth() for _, child in self.children)

    def size(self) -> int:
        """Total number of nodes."""
        return 1 + sum(child.size() for _, child in self.children)

    def branching_factor(self) -> int:
        """Maximum out-degree over all nodes (Lemma 5.7)."""
        best = self.out_degree
        for _, child in self.children:
            best = max(best, child.branching_factor())
        return best

    def leaves(self) -> List[OValue]:
        """All leaf labels, left to right."""
        if self.kind == LEAF:
            return [self.label]
        out: List[OValue] = []
        for _, child in self.children:
            out.extend(child.leaves())
        return out

    # -- rendering -----------------------------------------------------------

    def render(self, indent: int = 0) -> str:
        """An ASCII rendering of the tree, one node per line."""
        pad = "  " * indent
        if self.kind == LEAF:
            return f"{pad}{self.label!r}"
        head = "×" if self.kind == TUPLE else "*"
        lines = [f"{pad}{head}"]
        for attr, child in self.children:
            if attr is not None:
                lines.append(f"{pad}  .{attr}:")
                lines.append(child.render(indent + 2))
            else:
                lines.append(child.render(indent + 1))
        return "\n".join(lines)


def from_ovalue(value: OValue) -> ValueTree:
    """Build the tree representation of an o-value (Section 2.1)."""
    if isinstance(value, OTuple):
        children = tuple((attr, from_ovalue(component)) for attr, component in value.items())
        return ValueTree(TUPLE, children=children)
    if isinstance(value, OSet):
        ordered = sorted(value, key=sort_key)
        children = tuple((None, from_ovalue(element)) for element in ordered)
        return ValueTree(SET, children=children)
    return ValueTree(LEAF, label=value)


def to_ovalue(tree: ValueTree) -> OValue:
    """Recover the o-value a tree represents (inverse of :func:`from_ovalue`)."""
    if tree.kind == LEAF:
        return tree.label
    if tree.kind == TUPLE:
        return OTuple({attr: to_ovalue(child) for attr, child in tree.children})
    return OSet(to_ovalue(child) for _, child in tree.children)
