"""Workload generators and canonical fixtures for tests and benchmarks."""

from repro.workloads.genesis import (
    ANCESTOR,
    FIRST,
    FOUNDED,
    SECOND,
    genesis_instance,
    genesis_schema,
)
from repro.workloads.graphs import (
    binary_tree,
    cycle_graph,
    layered_dag,
    node_name,
    parent_forest,
    path_graph,
    random_graph,
    transitive_closure,
)
from repro.workloads.university import (
    INSTRUCTOR,
    PERSON,
    STUDENT,
    TA,
    university_instance,
    university_schema,
)

__all__ = [
    "ANCESTOR",
    "FIRST",
    "FOUNDED",
    "SECOND",
    "genesis_instance",
    "genesis_schema",
    "binary_tree",
    "cycle_graph",
    "layered_dag",
    "node_name",
    "parent_forest",
    "path_graph",
    "random_graph",
    "transitive_closure",
    "INSTRUCTOR",
    "PERSON",
    "STUDENT",
    "TA",
    "university_instance",
    "university_schema",
]
