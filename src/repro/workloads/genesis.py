"""Example 1.1 — the Genesis instance, verbatim from the paper.

Schema S: classes ``1st-generation`` and ``2nd-generation``, relations
``founded-lineage`` and ``ancestor-of-celebrity``; instance I with oids
adam, eve, cain, abel, seth, other — cyclic through the spouse/children
links, with ν(other) undefined ("Genesis is rather vague on this point").

This fixture exercises every structural feature at once: cyclic class
types, union types, set-valued attributes, relations over class oids, and
incomplete information via an undefined ν.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import D, classref, set_of, tuple_of, union
from repro.values.ovalues import Oid, OSet, OTuple

FIRST = "first_generation"
SECOND = "second_generation"
FOUNDED = "founded_lineage"
ANCESTOR = "ancestor_of_celebrity"


def genesis_schema() -> Schema:
    """The schema of Example 1.1 (names pythonized)."""
    first = classref(FIRST)
    second = classref(SECOND)
    return Schema(
        relations={
            FOUNDED: second,
            ANCESTOR: tuple_of(anc=second, desc=union(D, tuple_of(spouse=D))),
        },
        classes={
            FIRST: tuple_of(name=D, spouse=first, children=set_of(second)),
            SECOND: tuple_of(name=D, occupations=set_of(D)),
        },
    )


def genesis_instance() -> Tuple[Instance, Dict[str, Oid]]:
    """The instance of Example 1.1; returns (instance, oids by name)."""
    schema = genesis_schema()
    oids = {name: Oid(name) for name in ("adam", "eve", "cain", "abel", "seth", "other")}
    adam, eve = oids["adam"], oids["eve"]
    cain, abel, seth, other = oids["cain"], oids["abel"], oids["seth"], oids["other"]
    children = OSet([cain, abel, seth, other])
    instance = Instance(
        schema,
        classes={FIRST: [adam, eve], SECOND: [cain, abel, seth, other]},
        relations={
            FOUNDED: [cain, seth, other],
            ANCESTOR: [
                OTuple(anc=seth, desc="Noah"),
                OTuple(anc=cain, desc=OTuple(spouse="Ada")),
            ],
        },
        nu={
            adam: OTuple(name="Adam", spouse=eve, children=children),
            eve: OTuple(name="Eve", spouse=adam, children=children),
            cain: OTuple(name="Cain", occupations=OSet(["Farmer", "Nomad", "Artisan"])),
            abel: OTuple(name="Abel", occupations=OSet(["Shepherd"])),
            seth: OTuple(name="Seth", occupations=OSet()),
            # ν(other) is undefined — Genesis is rather vague on this point.
        },
    )
    return instance, oids
