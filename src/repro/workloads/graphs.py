"""Graph workload generators for the benchmarks.

Experiments E2, E10 and E11 sweep over directed graphs of growing size;
these generators produce them deterministically (seeded) in both the flat
Datalog form (sets of pairs) and the IQL instance form.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

Edge = Tuple[str, str]


def node_name(i: int) -> str:
    return f"n{i:04d}"


def path_graph(n: int) -> Set[Edge]:
    """A simple path n0 → n1 → ... — worst-case depth for transitive closure."""
    return {(node_name(i), node_name(i + 1)) for i in range(n - 1)}


def cycle_graph(n: int) -> Set[Edge]:
    """A directed cycle — the canonical cyclic re-representation input."""
    return {(node_name(i), node_name((i + 1) % n)) for i in range(n)}


def random_graph(n: int, average_degree: float = 2.0, seed: int = 0) -> Set[Edge]:
    """A seeded random digraph with ~``average_degree`` out-edges per node."""
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    # A digraph without self-loops has at most n(n-1) edges; clamp the
    # target or small n would loop forever chasing unreachable density.
    target = min(int(n * average_degree), n * (n - 1))
    names = [node_name(i) for i in range(n)]
    while len(edges) < target:
        a, b = rng.choice(names), rng.choice(names)
        if a != b:
            edges.add((a, b))
    return edges


def layered_dag(layers: int, width: int, seed: int = 0) -> Set[Edge]:
    """A layered DAG (each node points to 2 nodes of the next layer) —
    polynomial-size closure with controllable depth."""
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    for layer in range(layers - 1):
        for i in range(width):
            src = f"l{layer}_{i}"
            for _ in range(2):
                dst = f"l{layer + 1}_{rng.randrange(width)}"
                edges.add((src, dst))
    return edges


def binary_tree(depth: int) -> Set[Edge]:
    """A complete binary tree of the given depth, edges parent → child."""
    edges: Set[Edge] = set()
    for i in range(1, 2 ** depth):
        if 2 * i < 2 ** (depth + 1) - 1:
            edges.add((node_name(i), node_name(2 * i)))
            edges.add((node_name(i), node_name(2 * i + 1)))
    return edges


def transitive_closure(edges: Set[Edge]) -> Set[Edge]:
    """Reference closure (Floyd–Warshall-ish worklist) for oracle checks."""
    closure: Set[Edge] = set(edges)
    changed = True
    while changed:
        changed = False
        by_src = {}
        for a, b in closure:
            by_src.setdefault(a, set()).add(b)
        for a, b in list(closure):
            for c in by_src.get(b, ()):
                if (a, c) not in closure:
                    closure.add((a, c))
                    changed = True
    return closure


def parent_forest(families: int, generations: int, children: int = 2) -> Tuple[Set[Edge], List[str]]:
    """A forest of family trees (child, parent) pairs for same-generation
    queries; returns (parent edges, all persons)."""
    edges: Set[Edge] = set()
    persons: List[str] = []
    for f in range(families):
        previous = [f"f{f}_g0_p0"]
        persons.extend(previous)
        for _generation in range(1, generations):
            current = []
            for parent in previous:
                for c in range(children):
                    kid = f"{parent}/c{c}"
                    edges.add((kid, parent))
                    current.append(kid)
            persons.extend(current)
            previous = current
    return edges, persons
