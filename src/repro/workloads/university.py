"""The university inheritance workload (Examples 6.1.2 / 6.2.1).

person / student / instructor / ta with the isa diamond

    ta ≤ student ≤ person,  ta ≤ instructor ≤ person

and the succinct declarations of Example 6.2.1, whose effective types the
*-interpretation expands into Example 6.1.2's explicit records:

    t_person     = [name: D]
    t_student    = [name: D, course_taken: D]
    t_instructor = [name: D, course_taught: D]
    t_ta         = [name: D, course_taken: D, course_taught: D]
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.inheritance.inhschema import InheritanceSchema
from repro.schema.instance import Instance
from repro.typesys.expressions import D, classref, tuple_of
from repro.values.ovalues import Oid, OTuple

PERSON, STUDENT, INSTRUCTOR, TA = "person", "student", "instructor", "ta"


def university_schema() -> InheritanceSchema:
    """The succinct declarations of Example 6.2.1."""
    return InheritanceSchema(
        relations={
            # A relation typed over the hierarchy: enrollment pairs a
            # student-ish object with an instructor-ish object.
            "teaches": tuple_of(T=classref(INSTRUCTOR), S=classref(STUDENT)),
        },
        classes={
            PERSON: tuple_of(name=D),
            STUDENT: tuple_of(course_taken=D),
            INSTRUCTOR: tuple_of(course_taught=D),
            TA: tuple_of(),
        },
        isa=[(STUDENT, PERSON), (INSTRUCTOR, PERSON), (TA, STUDENT), (TA, INSTRUCTOR)],
    )


def university_instance(
    people: int = 4, students: int = 4, instructors: int = 2, tas: int = 2, seed: int = 0
) -> Tuple[Instance, Dict[str, List[Oid]]]:
    """A populated instance over the *base* schema (disjoint π): values
    follow the effective types t_P, teaching pairs are drawn randomly.

    The instance is built over the plain base schema and is meant to be
    validated through :meth:`InheritanceSchema.validate_instance` (or run
    through IQL on the compiled union-type schema)."""
    rng = random.Random(seed)
    schema = university_schema()
    base = schema.base
    instance = Instance(base)
    groups: Dict[str, List[Oid]] = {PERSON: [], STUDENT: [], INSTRUCTOR: [], TA: []}
    courses = [f"course{i}" for i in range(max(2, instructors + tas))]

    def add(class_name: str, count: int, value_builder) -> None:
        for i in range(count):
            oid = Oid(f"{class_name}{i}")
            instance.add_class_member(class_name, oid)
            instance.assign(oid, value_builder(f"{class_name}_{i}"))
            groups[class_name].append(oid)

    add(PERSON, people, lambda name: OTuple(name=name))
    add(
        STUDENT,
        students,
        lambda name: OTuple(name=name, course_taken=rng.choice(courses)),
    )
    add(
        INSTRUCTOR,
        instructors,
        lambda name: OTuple(name=name, course_taught=rng.choice(courses)),
    )
    add(
        TA,
        tas,
        lambda name: OTuple(
            name=name,
            course_taken=rng.choice(courses),
            course_taught=rng.choice(courses),
        ),
    )

    # teaches: instructors *or tas* teach students *or tas* — the inherited
    # assignment is what makes these pairs well typed.
    teachers = groups[INSTRUCTOR] + groups[TA]
    learners = groups[STUDENT] + groups[TA]
    for teacher in teachers:
        candidates = [l for l in learners if l != teacher]
        if candidates:
            learner = rng.choice(candidates)
            instance.add_relation_member("teaches", OTuple(T=teacher, S=learner))
    return instance, groups
