"""Shared fixtures: canonical schemas and instances used across test modules."""

import pytest

from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.iql import Program, Rule, Var, atom, columns, typecheck_program
from repro.values import OTuple


@pytest.fixture
def tc_schema() -> Schema:
    """E (edges) and T (closure), both [A1: D, A2: D]."""
    return Schema(relations={"E": columns(D, D), "T": columns(D, D)})


@pytest.fixture
def tc_program(tc_schema) -> Program:
    """Transitive closure as a plain Datalog-in-IQL program."""
    x, y, z = Var("x", D), Var("y", D), Var("z", D)
    return typecheck_program(
        Program(
            tc_schema,
            rules=[
                Rule(atom(tc_schema, "T", x, y), [atom(tc_schema, "E", x, y)]),
                Rule(
                    atom(tc_schema, "T", x, z),
                    [atom(tc_schema, "T", x, y), atom(tc_schema, "E", y, z)],
                ),
            ],
            input_names=["E"],
            output_names=["T"],
        )
    )


def edge_instance(schema: Schema, edges) -> Instance:
    return Instance(
        schema.project(["E"]),
        relations={"E": [OTuple(A01=a, A02=b) for a, b in edges]},
    )


@pytest.fixture
def person_schema() -> Schema:
    """A tiny cyclic class schema: Person = [name: D, friends: {Person}]."""
    P = classref("Person")
    return Schema(classes={"Person": tuple_of(name=D, friends=set_of(P))})
