"""Tests for the relational algebra → IQL compiler (Section 3.4's claim)."""

import pytest

from repro.errors import TypeCheckError
from repro.iql import classify, evaluate, typecheck_program
from repro.iql.algebra import (
    Diff,
    Join,
    Project,
    Rel,
    Rename,
    Select,
    UnionOp,
    compile_query,
    eq_attr,
    eq_const,
    neq_const,
)
from repro.schema import Instance, Schema
from repro.typesys import D, set_of, tuple_of
from repro.values import OTuple


@pytest.fixture
def schema():
    return Schema(
        relations={
            "Emp": tuple_of(name=D, dept=D, salary=D),
            "Dept": tuple_of(dept=D, head=D),
            "Former": tuple_of(name=D, dept=D, salary=D),
        }
    )


@pytest.fixture
def data(schema):
    def row(**kwargs):
        return OTuple(kwargs)

    return Instance(
        schema,
        relations={
            "Emp": [
                row(name="ada", dept="eng", salary="high"),
                row(name="bob", dept="eng", salary="low"),
                row(name="cyn", dept="ops", salary="high"),
            ],
            "Dept": [row(dept="eng", head="ada"), row(dept="ops", head="cyn")],
            "Former": [row(name="bob", dept="eng", salary="low")],
        },
    )


def run(expr, schema, data):
    program = typecheck_program(compile_query(expr, schema))
    report = classify(program)
    assert report.is_iql_rr  # the algebra lives in the PTIME fragment
    inp = data.project(program.input_schema)
    out = evaluate(program, inp)
    return {tuple(sorted(t.items())) for t in out.relations["Answer"]}


def rows(*dicts):
    return {tuple(sorted(d.items())) for d in dicts}


class TestOperators:
    def test_select_const(self, schema, data):
        got = run(Select(Rel("Emp"), eq_const("dept", "eng")), schema, data)
        assert got == rows(
            dict(name="ada", dept="eng", salary="high"),
            dict(name="bob", dept="eng", salary="low"),
        )

    def test_select_negated(self, schema, data):
        got = run(Select(Rel("Emp"), neq_const("salary", "high")), schema, data)
        assert got == rows(dict(name="bob", dept="eng", salary="low"))

    def test_select_attr_equality(self, schema, data):
        # department heads: join Emp with Dept, keep name = head
        joined = Join(Rel("Emp"), Rel("Dept"))
        got = run(Select(joined, eq_attr("name", "head")), schema, data)
        assert got == rows(
            dict(name="ada", dept="eng", salary="high", head="ada"),
            dict(name="cyn", dept="ops", salary="high", head="cyn"),
        )

    def test_project(self, schema, data):
        got = run(Project(Rel("Emp"), ["name"]), schema, data)
        assert got == rows(dict(name="ada"), dict(name="bob"), dict(name="cyn"))

    def test_project_deduplicates(self, schema, data):
        got = run(Project(Rel("Emp"), ["salary"]), schema, data)
        assert got == rows(dict(salary="high"), dict(salary="low"))

    def test_rename(self, schema, data):
        got = run(
            Project(Rename(Rel("Dept"), {"head": "manager"}), ["manager"]),
            schema,
            data,
        )
        assert got == rows(dict(manager="ada"), dict(manager="cyn"))

    def test_natural_join(self, schema, data):
        got = run(
            Project(Join(Rel("Emp"), Rel("Dept")), ["name", "head"]), schema, data
        )
        assert got == rows(
            dict(name="ada", head="ada"),
            dict(name="bob", head="ada"),
            dict(name="cyn", head="cyn"),
        )

    def test_union(self, schema, data):
        got = run(
            Project(UnionOp(Rel("Emp"), Rel("Former")), ["name"]), schema, data
        )
        assert got == rows(dict(name="ada"), dict(name="bob"), dict(name="cyn"))

    def test_difference(self, schema, data):
        got = run(Diff(Rel("Emp"), Rel("Former")), schema, data)
        assert got == rows(
            dict(name="ada", dept="eng", salary="high"),
            dict(name="cyn", dept="ops", salary="high"),
        )

    def test_difference_forces_staging(self, schema):
        # Derived operands occupy stratum 0; the difference waits for them.
        q = Diff(
            Select(Rel("Emp"), eq_const("dept", "eng")),
            Select(Rel("Former"), eq_const("dept", "eng")),
        )
        program = compile_query(q, schema)
        assert len(program.stages) == 2

    def test_difference_over_base_relations_is_single_stage(self, schema):
        # Base relations are complete from the start: no staging needed.
        program = compile_query(Diff(Rel("Emp"), Rel("Former")), schema)
        assert len(program.stages) == 1

    def test_nested_query(self, schema, data):
        # names of high earners outside ops who are not former employees
        q = Project(
            Diff(
                Select(Rel("Emp"), eq_const("salary", "high"), neq_const("dept", "ops")),
                Select(Rel("Former"), eq_const("salary", "high"), neq_const("dept", "ops")),
            ),
            ["name"],
        )
        got = run(q, schema, data)
        assert got == rows(dict(name="ada"))


class TestValidation:
    def test_non_flat_relation_rejected(self):
        schema = Schema(relations={"Nested": tuple_of(a=D, b=set_of(D))})
        with pytest.raises(TypeCheckError):
            compile_query(Select(Rel("Nested"), eq_const("a", "x")), schema)

    def test_union_arity_mismatch(self, schema):
        with pytest.raises(TypeCheckError):
            compile_query(UnionOp(Rel("Emp"), Rel("Dept")), schema)

    def test_projection_on_missing_attribute(self, schema):
        with pytest.raises(TypeCheckError):
            compile_query(Project(Rel("Emp"), ["nope"]), schema)

    def test_selection_on_missing_attribute(self, schema):
        with pytest.raises(TypeCheckError):
            compile_query(Select(Rel("Emp"), eq_const("nope", "x")), schema)

    def test_selection_with_non_constant(self, schema):
        with pytest.raises(TypeCheckError):
            compile_query(Select(Rel("Emp"), eq_const("name", object())), schema)
