"""repro.analysis — the unified static-analysis subsystem (IQL lint).

Covers the Diagnostic/Span core, the individual passes, certification
consistency with the Section-5 predicates, the text/JSON renderings, the
``repro lint`` / ``repro check --json`` CLI, and the evaluator's opt-in
pre-flight hook.
"""

import json
import warnings

import pytest

from repro.analysis import (
    CODES,
    Certificate,
    PreflightWarning,
    Report,
    Span,
    analyze,
    analyze_source,
    certify,
    diagnostic,
)
from repro.diagnostics import sort_diagnostics
from repro.errors import SublanguageError, TypeCheckError
from repro.iql import Evaluator, Membership, Program, Rule, Var, atom, classify, columns
from repro.iql.typecheck import check_program_diagnostics, check_rule_diagnostics
from repro.parser.grammar import program_from_source
from repro.schema import Schema
from repro.transform import (
    graph_to_class_program,
    powerset_restricted_program,
    powerset_unrestricted_program,
)
from repro.typesys import D, tuple_of
from repro.__main__ import main


DIVERGENT = """
schema {
  relation Seed: [A1: P];
  relation R3: [A1: P, A2: P];
  class P: [];
}
var x, y, z: P
input Seed
output R3
rules {
  R3(x, z) :- Seed(x).
  R3(y, z) :- R3(x, y).
}
"""

TC = """
schema {
  relation E: [A1: D, A2: D];
  relation TC: [A1: D, A2: D];
}
var x, y, z: D
input E
output TC
rules {
  TC(x, y) :- E(x, y).
  TC(x, z) :- TC(x, y), E(y, z).
}
"""


class TestSpanAndDiagnostic:
    def test_span_ordering_and_str(self):
        assert str(Span(3, 7)) == "3:7"
        assert Span(1, 2).sort_key() < Span(1, 3).sort_key() < Span(2, 1).sort_key()

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("IQL") and len(code) == 6
            assert severity in ("error", "warning", "info")
            assert title

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            diagnostic("IQL999", "nope")

    def test_render_format(self):
        d = diagnostic("IQL101", "boom", span=Span(4, 9))
        assert d.render("f.iql") == "f.iql:4:9 IQL101 boom"

    def test_sort_puts_spanless_last(self):
        a = diagnostic("IQL401", "info")
        b = diagnostic("IQL101", "err", span=Span(1, 1))
        assert sort_diagnostics([a, b])[0] is b

    def test_parser_attaches_spans(self):
        program = program_from_source(DIVERGENT)
        for rule in program.rules:
            assert rule.span is not None
            assert rule.span.line >= 10
            assert rule.head.span is not None


class TestTypecheckDiagnostics:
    @pytest.fixture
    def schema(self):
        return Schema(
            relations={"S": D, "R": columns(D, D)},
            classes={"P": tuple_of(a=D)},
        )

    def test_well_typed_rule_is_clean(self, schema):
        x, y = Var("x", D), Var("y", D)
        rule = Rule(atom(schema, "S", x), [atom(schema, "R", x, y)])
        assert check_rule_diagnostics(rule, schema) == []

    def test_head_only_nonclass_var_is_iql106(self, schema):
        x, y = Var("x", D), Var("y", D)
        rule = Rule(atom(schema, "R", x, y), [atom(schema, "S", x)])
        diags = check_rule_diagnostics(rule, schema)
        assert [d.code for d in diags] == ["IQL106"]
        assert diags[0].severity == "error"

    def test_unknown_name_is_iql102(self, schema):
        from repro.iql.terms import NameTerm

        x = Var("x", D)
        rule = Rule(atom(schema, "S", x), [Membership(NameTerm("Nope"), x)])
        codes = {d.code for d in check_rule_diagnostics(rule, schema)}
        assert "IQL102" in codes

    def test_legacy_wrapper_still_raises(self, schema):
        x, y = Var("x", D), Var("y", D)
        rule = Rule(atom(schema, "R", x, y), [atom(schema, "S", x)])
        program = Program(schema, rules=[rule])
        errors = [str(e) for e in check_program_diagnostics(program)]
        assert errors  # diagnostics present
        from repro.iql.typecheck import typecheck_program

        with pytest.raises(TypeCheckError):
            typecheck_program(program)

    def test_located_error_str_carries_context(self):
        err = TypeCheckError("bad", rule_label="r1", span=Span(7, 3))
        assert "rule r1" in str(err)
        assert "at 7:3" in str(err)
        assert str(TypeCheckError("plain")) == "plain"

    def test_sublanguage_error_str_carries_context(self):
        err = SublanguageError("not rr", rule_label="r9", span=Span(2, 1))
        assert "rule r9" in str(err) and "at 2:1" in str(err)


class TestPasses:
    def test_divergent_loop_flagged_iql301(self):
        report = analyze(program_from_source(DIVERGENT))
        codes = [d.code for d in report.diagnostics]
        assert "IQL301" in codes
        flag = next(d for d in report.diagnostics if d.code == "IQL301")
        assert "R3" in flag.message
        assert flag.span is not None and flag.span.line >= 10

    def test_transitive_closure_is_clean(self):
        report = analyze(program_from_source(TC))
        assert report.ok
        assert [d.code for d in report.diagnostics] == ["IQL401"]

    def test_unbound_var_flagged_iql202(self):
        report = analyze(powerset_unrestricted_program())
        assert any(d.code == "IQL202" for d in report.diagnostics)

    def test_negation_only_var_flagged_iql201_not_202(self):
        schema = Schema(relations={"S": D, "R": columns(D, D)})
        x, y = Var("x", D), Var("y", D)
        rule = Rule(
            atom(schema, "S", x),
            [atom(schema, "S", x), atom(schema, "R", x, y, positive=False)],
        )
        report = analyze(Program(schema, rules=[rule]))
        codes = [d.code for d in report.diagnostics if d.code.startswith("IQL2")]
        assert codes == ["IQL201"]  # the sharper code wins; no double report

    def test_unused_declaration_flagged_iql501(self):
        schema = Schema(relations={"S": D, "Ghost": columns(D, D)})
        x = Var("x", D)
        program = Program(
            schema,
            rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)])],
            input_names=["S"],
            output_names=["S"],
        )
        report = analyze(program)
        flags = [d for d in report.diagnostics if d.code == "IQL501"]
        assert len(flags) == 1 and "Ghost" in flags[0].message

    def test_io_names_are_not_unused(self):
        schema = Schema(relations={"S": D, "Out": D})
        x = Var("x", D)
        program = Program(
            schema,
            rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)])],
            input_names=["S"],
            output_names=["Out"],
        )
        report = analyze(program)
        assert not any(d.code == "IQL501" for d in report.diagnostics)

    def test_dead_rule_flagged_iql502(self):
        schema = Schema(relations={"S": D, "Tmp": D, "Out": D})
        x = Var("x", D)
        program = Program(
            schema,
            rules=[
                Rule(atom(schema, "Tmp", x), [atom(schema, "S", x)]),
                Rule(atom(schema, "Out", x), [atom(schema, "S", x)]),
            ],
            input_names=["S"],
            output_names=["Out"],
        )
        report = analyze(program)
        flags = [d for d in report.diagnostics if d.code == "IQL502"]
        assert len(flags) == 1 and "'Tmp'" in flags[0].message

    def test_semantic_passes_skipped_on_type_errors(self):
        schema = Schema(relations={"S": D, "R": columns(D, D)})
        x, y = Var("x", D), Var("y", D)
        program = Program(schema, rules=[Rule(atom(schema, "R", x, y), [atom(schema, "S", x)])])
        report = analyze(program)
        assert not report.ok
        assert report.certificate is None
        assert all(d.code.startswith("IQL1") for d in report.diagnostics)


class TestCertification:
    @pytest.mark.parametrize(
        "builder",
        [graph_to_class_program, powerset_restricted_program, powerset_unrestricted_program],
    )
    def test_certificate_matches_classify(self, builder):
        program = builder()
        cert = certify(program)
        report = classify(program)
        assert (cert.sublanguage == "IQLrr") == report.is_iql_rr
        assert (cert.sublanguage in ("IQLrr", "IQLpr")) == report.is_iql_pr
        assert cert.ptime == report.is_iql_pr

    def test_analyze_embeds_certificate(self):
        report = analyze(graph_to_class_program())
        assert isinstance(report.certificate, Certificate)
        assert report.certificate.sublanguage == "IQLrr"
        assert "IQLrr" in report.certificate.summary()
        assert any(d.code == "IQL401" for d in report.diagnostics)

    def test_divergent_program_is_unrestricted(self):
        report = analyze(program_from_source(DIVERGENT))
        assert report.certificate.sublanguage == "unrestricted"
        assert not report.certificate.ptime

    def test_certificate_json_round_trips(self):
        doc = certify(graph_to_class_program()).to_json()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["ptime"] is True


class TestReportAndSource:
    def test_render_text_shape(self):
        report = analyze_source(DIVERGENT, "d.iql")
        lines = report.render_text("d.iql").splitlines()
        assert lines[-1].endswith("in d.iql")
        flagged = [ln for ln in lines if " IQL301 " in ln]
        assert flagged and flagged[0].startswith("d.iql:")

    def test_parse_error_becomes_iql001(self):
        report = analyze_source("schema { relation R: [A1: D] }\nrules { R(", "b.iql")
        assert not report.ok
        assert report.diagnostics[0].code == "IQL001"
        assert report.diagnostics[0].span is not None
        assert report.certificate is None

    def test_to_json_shape(self):
        doc = analyze_source(TC, "tc.iql").to_json(filename="tc.iql")
        assert doc["ok"] is True
        assert doc["file"] == "tc.iql"
        assert doc["certificate"]["sublanguage"] == "IQLrr"
        assert all("code" in d for d in doc["diagnostics"])
        json.dumps(doc)  # serializable

    def test_report_severity_views(self):
        r = Report(
            diagnostics=[
                diagnostic("IQL101", "e"),
                diagnostic("IQL202", "w"),
                diagnostic("IQL401", "i"),
            ]
        )
        assert len(r.errors) == 1 and len(r.warnings) == 1
        assert not r.ok


class TestCli:
    @pytest.fixture
    def divergent_path(self, tmp_path):
        path = tmp_path / "divergent.iql"
        path.write_text(DIVERGENT)
        return str(path)

    @pytest.fixture
    def broken_path(self, tmp_path):
        path = tmp_path / "broken.iql"
        path.write_text("schema { relation R: [A1: D] }\nrules { R(")
        return str(path)

    def test_lint_warns_but_exits_zero(self, divergent_path, capsys):
        assert main(["lint", divergent_path]) == 0
        out = capsys.readouterr().out
        assert "IQL301" in out and "R3" in out
        assert f"{divergent_path}:" in out

    def test_lint_errors_exit_nonzero(self, broken_path, capsys):
        assert main(["lint", broken_path]) == 1
        assert "IQL001" in capsys.readouterr().out

    def test_lint_json_format(self, divergent_path, capsys):
        assert main(["lint", divergent_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert any(d["code"] == "IQL301" for d in doc["diagnostics"])
        assert doc["certificate"]["sublanguage"] == "unrestricted"

    def test_check_json(self, divergent_path, capsys):
        assert main(["check", divergent_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "classification" in doc
        assert doc["certificate"]["sublanguage"] == "unrestricted"

    def test_check_text_unchanged(self, divergent_path, capsys):
        assert main(["check", divergent_path]) == 0
        assert "classification:" in capsys.readouterr().out


class TestPreflight:
    def test_preflight_warns_on_divergent_program(self):
        program = program_from_source(DIVERGENT)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Evaluator(program, preflight=True)
        assert any(
            issubclass(w.category, PreflightWarning) and "IQL301" in str(w.message)
            for w in caught
        )

    def test_preflight_off_by_default(self):
        program = program_from_source(DIVERGENT)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Evaluator(program)
        assert not caught

    def test_preflight_silent_on_clean_program(self):
        program = program_from_source(TC)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Evaluator(program, preflight=True)
        assert not [w for w in caught if issubclass(w.category, PreflightWarning)]


class TestExamples:
    @pytest.mark.parametrize(
        "name, expect_ok, expect_codes",
        [
            ("transitive_closure", True, set()),
            ("graph_objects", True, set()),
            ("divergent_invention", True, {"IQL301", "IQL603"}),
        ],
    )
    def test_shipped_examples_lint(self, name, expect_ok, expect_codes):
        import pathlib

        path = pathlib.Path(__file__).resolve().parent.parent / "examples" / f"{name}.iql"
        report = analyze_source(path.read_text(), str(path))
        assert report.ok is expect_ok
        warning_codes = {d.code for d in report.warnings}
        assert warning_codes == expect_codes
