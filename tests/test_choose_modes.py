"""Tests for the three choose disciplines: verify / trusted / N-IQL."""

import pytest

from repro.errors import GenericityError
from repro.iql import (
    Choose,
    Evaluator,
    Membership,
    NameTerm,
    Program,
    Rule,
    TupleTerm,
    Var,
    typecheck_program,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, tuple_of
from repro.values import Oid, OTuple


def picker_program():
    """R_pick(m) ← choose — select one object of class P."""
    P = classref("P")
    schema = Schema(
        relations={"R_pick": tuple_of(M=P)},
        classes={"P": tuple_of(tag=D)},
    )
    m = Var("m", P)
    return typecheck_program(
        Program(
            schema,
            rules=[Rule(Membership(NameTerm("R_pick"), TupleTerm(M=m)), [Choose()])],
            input_names=["P"],
            output_names=["R_pick", "P"],
        )
    )


def symmetric_instance(schema, n=3):
    oids = [Oid(f"s{i}") for i in range(n)]
    inst = Instance(schema.project(["P"]))
    for o in oids:
        inst.add_class_member("P", o)
        inst.assign(o, OTuple(tag="same"))
    return inst, oids


def asymmetric_instance(schema):
    oids = [Oid("a"), Oid("b")]
    inst = Instance(schema.project(["P"]))
    for i, o in enumerate(oids):
        inst.add_class_member("P", o)
        inst.assign(o, OTuple(tag=f"tag{i}"))
    return inst, oids


class TestVerify:
    def test_symmetric_candidates_allowed(self):
        program = picker_program()
        inst, oids = symmetric_instance(program.schema)
        out = Evaluator(program, choose_mode="verify").run(inst).output
        assert len(out.relations["R_pick"]) == 1

    def test_distinguishable_candidates_rejected(self):
        program = picker_program()
        inst, _ = asymmetric_instance(program.schema)
        with pytest.raises(GenericityError):
            Evaluator(program, choose_mode="verify").run(inst)

    def test_empty_class_rejected(self):
        program = picker_program()
        inst = Instance(program.schema.project(["P"]))
        with pytest.raises(GenericityError):
            Evaluator(program, choose_mode="verify").run(inst)

    def test_singleton_needs_no_orbit_check(self):
        program = picker_program()
        inst, oids = symmetric_instance(program.schema, n=1)
        out = Evaluator(program, choose_mode="verify").run(inst).output
        (row,) = out.relations["R_pick"]
        assert row["M"] == oids[0]


class TestTrusted:
    def test_trusted_skips_the_check(self):
        program = picker_program()
        inst, oids = asymmetric_instance(program.schema)
        out = Evaluator(program, choose_mode="trusted").run(inst).output
        (row,) = out.relations["R_pick"]
        assert row["M"] in oids


class TestNondeterministic:
    def test_niql_picks_arbitrarily(self):
        # Remark N-IQL: choice without genericity — legal, but the result
        # is a nondeterministic transformation.
        program = picker_program()
        picks = set()
        for seed in range(8):
            inst, oids = asymmetric_instance(program.schema)
            out = Evaluator(
                program, choose_mode="nondeterministic", seed=seed
            ).run(inst).output
            (row,) = out.relations["R_pick"]
            picks.add(row["M"].name)
        # different seeds genuinely reach different witnesses
        assert picks == {"a", "b"}

    def test_niql_is_reproducible_per_seed(self):
        program = picker_program()
        names = []
        for _ in range(2):
            inst, _ = asymmetric_instance(program.schema)
            out = Evaluator(
                program, choose_mode="nondeterministic", seed=123
            ).run(inst).output
            (row,) = out.relations["R_pick"]
            names.append(row["M"].name)
        assert names[0] == names[1]

    def test_unknown_mode_rejected(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            Evaluator(picker_program(), choose_mode="chaotic")
