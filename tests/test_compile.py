"""Tests for the rule compiler (repro.iql.compile).

Three layers:

* fallback constructs — each shape the compiler refuses (deletion
  bodies, choose, unbound dereference, set-assignment patterns) must run
  interpreted, produce the reference answer, and record its reason tag;
* kernel invalidation — compiled kernels capture live extension sets and
  index dicts by identity, so ``drop_indexes`` (IQL* deletions) and a
  change of instance must force recompilation;
* plumbing — the bounded caches, the surfaced statistics, and the CLI
  flag validation.

The 220-seed compiled-vs-reference sweep lives in test_differential.py.
"""

import pytest

from repro.caches import BoundedDict
from repro.iql import (
    Choose,
    Deref,
    Evaluator,
    Membership,
    NameTerm,
    Program,
    Rule,
    SetTerm,
    TupleTerm,
    Var,
    atom,
    columns,
)
from repro.iql.compile import RuleCompiler
from repro.iql.evaluator import EvaluationStats
from repro.parser.grammar import program_from_source
from repro.schema import Instance, Schema, are_o_isomorphic
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OTuple, OSet


def reference(program, instance):
    return Evaluator(program, seminaive=False, indexed=False).run(instance.copy())


def compiled(program, instance, **kwargs):
    return Evaluator(program, compile=True, **kwargs).run(instance.copy())


# -- fallback constructs -----------------------------------------------------------


class TestFallbacks:
    def test_deletion_rule_falls_back(self):
        schema = Schema(
            relations={"Src": columns(D), "Kill": columns(D), "Dst": columns(D)}
        )
        x = Var("x", D)
        program = Program(
            schema,
            rules=[
                Rule(atom(schema, "Dst", x), [atom(schema, "Src", x)]),
                Rule(atom(schema, "Dst", x), [atom(schema, "Kill", x)], delete=True),
            ],
            input_names=["Src", "Kill"],
            output_names=["Dst"],
        )
        instance = Instance(schema.project(["Src", "Kill"]))
        for v in ("a", "b", "c"):
            instance.add_relation_member("Src", OTuple(A01=v))
        instance.add_relation_member("Kill", OTuple(A01="b"))
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert out.output == ref.output
        assert out.output.relations["Dst"] == {OTuple(A01="a"), OTuple(A01="c")}
        assert out.stats.compile_fallback_reasons.get("deletion", 0) >= 1
        assert out.stats.rules_interpreted >= 1

    def test_choose_rule_falls_back(self):
        P = classref("P")
        schema = Schema(
            relations={"R_pick": tuple_of(M=P)},
            classes={"P": tuple_of(tag=D)},
        )
        m = Var("m", P)
        program = Program(
            schema,
            rules=[Rule(Membership(NameTerm("R_pick"), TupleTerm(M=m)), [Choose()])],
            input_names=["P"],
            output_names=["R_pick", "P"],
        )
        instance = Instance(schema.project(["P"]))
        for i in range(3):
            oid = Oid(f"s{i}")
            instance.add_class_member("P", oid)
            instance.assign(oid, OTuple(tag="same"))
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert out.output == ref.output
        assert len(out.output.relations["R_pick"]) == 1
        assert out.stats.compile_fallback_reasons.get("choose", 0) >= 1

    def test_unbound_dereference_falls_back(self):
        C = classref("C")
        schema = Schema(
            relations={"Val": columns(D), "Out": columns(C)},
            classes={"C": D},
        )
        p = Var("p", C)
        program = Program(
            schema,
            rules=[Rule(atom(schema, "Out", p), [atom(schema, "Val", Deref(p))])],
            input_names=["Val", "C"],
            output_names=["Out", "C"],
        )
        instance = Instance(schema.project(["Val", "C"]))
        o1, o2 = Oid("o1"), Oid("o2")
        for oid, value in ((o1, "a"), (o2, "b")):
            instance.add_class_member("C", oid)
            instance.assign(oid, value)
        instance.add_relation_member("Val", OTuple(A01="a"))
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert out.output == ref.output
        assert out.output.relations["Out"] == {OTuple(A01=o1)}
        assert out.stats.compile_fallback_reasons.get("unbound-dereference", 0) >= 1

    def test_set_assignment_pattern_falls_back(self):
        schema = Schema(relations={"S": columns(set_of(D)), "U": columns(D)})
        x = Var("x", D)
        program = Program(
            schema,
            rules=[Rule(atom(schema, "U", x), [atom(schema, "S", SetTerm(x))])],
            input_names=["S"],
            output_names=["U"],
        )
        instance = Instance(schema.project(["S"]))
        instance.add_relation_member("S", OTuple(A01=OSet(["a"])))
        instance.add_relation_member("S", OTuple(A01=OSet(["b", "c"])))
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert out.output == ref.output
        assert out.output.relations["U"] == {OTuple(A01="a")}
        assert out.stats.compile_fallback_reasons.get("set-assignment", 0) >= 1

    def test_compilable_program_has_no_fallbacks(self):
        program, instance = _tc_setup()
        out = compiled(program, instance)
        assert out.stats.compile_fallbacks == 0
        assert out.stats.rules_interpreted == 0
        assert out.stats.rules_compiled == len(program.rules)


# -- kernel invalidation -----------------------------------------------------------


def _tc_setup(n=6):
    schema = Schema(relations={"E": columns(D, D), "T": columns(D, D)})
    x, y, z = Var("x", D), Var("y", D), Var("z", D)
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
            Rule(
                atom(schema, "T", x, z),
                [atom(schema, "T", x, y), atom(schema, "E", y, z)],
            ),
        ],
        input_names=["E"],
        output_names=["T"],
    )
    instance = Instance(schema.project(["E"]))
    for i in range(n - 1):
        instance.add_relation_member("E", OTuple(A01=f"n{i}", A02=f"n{i + 1}"))
    return program, instance


class TestInvalidation:
    def test_kernel_cached_then_invalidated_by_drop_indexes(self):
        program, working = _tc_setup()
        instance = working.with_schema(program.schema)
        rule = program.rules[1]  # the join rule: its plan probes an index
        compiler = RuleCompiler(use_indexes=True)
        compiler.begin_run(EvaluationStats())
        k1 = compiler.compiled_rule(rule, instance)
        assert k1 is not None
        assert k1.body.indexes is not None  # captured probe dicts
        assert compiler.compiled_rule(rule, instance) is k1  # cache hit
        instance.drop_indexes()
        assert not k1.valid_for(instance)
        k2 = compiler.compiled_rule(rule, instance)
        assert k2 is not None and k2 is not k1
        assert k2.valid_for(instance)

    def test_kernel_invalidated_by_instance_change(self):
        program, working = _tc_setup()
        instance = working.with_schema(program.schema)
        rule = program.rules[0]
        compiler = RuleCompiler(use_indexes=True)
        compiler.begin_run(EvaluationStats())
        k1 = compiler.compiled_rule(rule, instance)
        other = instance.copy()
        assert not k1.valid_for(other)
        k2 = compiler.compiled_rule(rule, other)
        assert k2 is not k1 and k2.valid_for(other)

    def test_compiled_run_survives_deletion_recompile_cycle(self):
        # A join rule (captures index dicts) plus a deletion rule: the
        # deletions drop the indexes mid-fixpoint, so the next step must
        # detect the stale kernel and recompile against fresh indexes.
        schema = Schema(
            relations={"E": columns(D, D), "T": columns(D, D), "Kill": columns(D, D)}
        )
        x, y, z = Var("x", D), Var("y", D), Var("z", D)
        program = Program(
            schema,
            rules=[
                Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
                Rule(
                    atom(schema, "T", x, z),
                    [atom(schema, "T", x, y), atom(schema, "E", y, z)],
                ),
                Rule(atom(schema, "T", x, y), [atom(schema, "Kill", x, y)], delete=True),
            ],
            input_names=["E", "Kill"],
            output_names=["T"],
        )
        instance = Instance(schema.project(["E", "Kill"]))
        for i in range(5):
            instance.add_relation_member("E", OTuple(A01=f"n{i}", A02=f"n{i + 1}"))
        instance.add_relation_member("Kill", OTuple(A01="n0", A02="n3"))
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert out.output == ref.output
        assert out.stats.compile_fallback_reasons.get("deletion", 0) >= 1
        assert out.stats.rules_compiled >= 2


# -- invention, blocking, weak assignment ------------------------------------------


MIXED_PROGRAM = """
schema {
  relation E: [A1: D, A2: D];
  relation T: [A1: D, A2: D];
  relation F: [A1: D, A2: D];
  relation Seed: [A1: P];
  class P: [];
}
var x, y, z: D
var p: P
input E, Seed, P
output T, F, P
rules {
  T(x, y) :- E(x, y).
  T(x, z) :- T(x, y), E(y, z).
  F(x, y) :- T(x, y), T(y, x).
  p^ = [] :- Seed(p).
}
"""


def _mixed_setup(n=8, objects=4):
    program = program_from_source(MIXED_PROGRAM)
    instance = Instance(program.input_schema)
    for i in range(n - 1):
        instance.add_relation_member("E", OTuple(A1=f"n{i}", A2=f"n{i + 1}"))
    instance.add_relation_member("E", OTuple(A1=f"n{n - 1}", A2="n0"))
    for k in range(objects):
        oid = Oid(f"p{k}")
        instance.add_class_member("P", oid)
        instance.add_relation_member("Seed", OTuple(A1=oid))
    return program, instance


class TestSemantics:
    def test_compiled_weak_assignment(self):
        program, instance = _mixed_setup()
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert out.output == ref.output
        assert out.output.classes["P"]
        assert all(
            out.output.value_of(oid) == OTuple() for oid in out.output.classes["P"]
        )
        assert out.stats.rules_compiled == 4

    def test_compiled_scheduled_agrees(self):
        program, instance = _mixed_setup()
        ref = reference(program, instance)
        out = Evaluator(program, schedule=True, compile=True).run(instance.copy())
        assert out.output == ref.output
        assert out.stats.strata == 3

    def test_compiled_invention_and_blocking(self):
        C = classref("C")
        schema = Schema(
            relations={"U": columns(D), "R": columns(D, C)},
            classes={"C": set_of(D)},
        )
        x = Var("x", D)
        c = Var("c", C)
        program = Program(
            schema,
            rules=[Rule(atom(schema, "R", x, c), [atom(schema, "U", x)])],
            input_names=["U"],
            output_names=["R", "C"],
        )
        instance = Instance(schema.project(["U"]))
        for v in ("a", "b", "c"):
            instance.add_relation_member("U", OTuple(A01=v))
        ref = reference(program, instance)
        out = compiled(program, instance)
        assert are_o_isomorphic(out.output, ref.output)
        # Blocking: exactly one invention per U-fact, then fixpoint.
        assert out.stats.oids_invented == 3


# -- cache plumbing and statistics -------------------------------------------------


class TestPlumbing:
    def test_bounded_dict_evicts_fifo(self):
        cache = BoundedDict(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3
        assert "a" not in cache and set(cache) == {"b", "c"}
        assert cache.evictions == 1

    def test_bounded_dict_overwrite_does_not_evict(self):
        cache = BoundedDict(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10
        assert set(cache) == {"a", "b"} and cache["a"] == 10
        assert cache.evictions == 0

    def test_bounded_dict_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            BoundedDict(0)

    def test_stats_surface_compile_and_caches(self):
        program, instance = _tc_setup()
        out = compiled(program, instance)
        assert out.stats.rules_compiled >= 1
        assert out.stats.compile_time >= 0.0
        assert out.stats.kernel_cache_entries >= 1
        assert out.stats.plan_cache_entries >= 1
        assert out.stats.kernel_cache_evictions == 0

    def test_compile_ignored_under_trace(self):
        program, instance = _tc_setup()
        evaluator = Evaluator(program, compile=True, trace=True)
        assert not evaluator.compile
        result = evaluator.run(instance.copy())
        assert result.output == reference(program, instance).output


class TestCli:
    def test_naive_and_compile_rejected(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "prog.iql", "--input", "in.json", "--naive", "--compile"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--naive" in err and "--compile" in err
