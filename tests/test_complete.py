"""Tests for the Theorem 4.2.4 completeness machinery at toy scale."""

import pytest

from repro.errors import EvaluationError
from repro.schema import Instance, Schema
from repro.transform.complete import (
    dovetail_pairs,
    dovetail_search,
    enumerate_instances,
)
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet


class TestDovetailOrder:
    def test_prefix(self):
        pairs = list(dovetail_pairs(3, 3))
        assert pairs[:4] == [(1, 1), (2, 1), (2, 2), (3, 1)]

    def test_covers_grid(self):
        pairs = set(dovetail_pairs(3, 4))
        assert (3, 3) in pairs and (1, 4) in pairs


class TestEnumerateInstances:
    def test_single_class_of_constants(self):
        schema = Schema(classes={"P": D})
        o = Oid()
        candidates = list(enumerate_instances(schema, [o], ["a", "b"]))
        # ν(o) ∈ {a, b} or undefined → 3 candidates.
        assert len(candidates) == 3
        values = {c.value_of(o) for c in candidates}
        assert values == {"a", "b", None}

    def test_set_valued_class_has_no_undefined(self):
        schema = Schema(classes={"Q": set_of(D)})
        o = Oid()
        candidates = list(enumerate_instances(schema, [o], ["a"]))
        # {} or {a} — set-valued ν is total (Condition (3) of Def 2.3.2).
        assert len(candidates) == 2

    def test_partition_over_two_classes(self):
        schema = Schema(classes={"P": D, "Q": D})
        o = Oid()
        candidates = list(enumerate_instances(schema, [o], ["a"]))
        # oid in P or in Q; value a or undefined → 4.
        assert len(candidates) == 4

    def test_relations_enumerate_subsets(self):
        schema = Schema(relations={"R": D}, classes={"P": tuple_of()})
        o = Oid()
        candidates = list(enumerate_instances(schema, [o], ["a"]))
        # ν(o) ∈ {[], undefined} × R ⊆ {a} → 2 × 2 = 4.
        assert len(candidates) == 4

    def test_budget_guard(self):
        schema = Schema(relations={"R": D})
        with pytest.raises(EvaluationError):
            list(
                enumerate_instances(
                    schema, [], [f"c{i}" for i in range(30)], budget=10
                )
            )

    def test_cyclic_values_enumerable(self):
        # T(P) = {P}: oids may contain each other — the cyclic candidates
        # the proof needs for recursive output types.
        schema = Schema(classes={"P": set_of(classref("P"))})
        o1, o2 = Oid(), Oid()
        candidates = list(enumerate_instances(schema, [o1, o2], []))
        # ν(oi) ⊆ {o1, o2}: 4 × 4 = 16 candidates.
        assert len(candidates) == 16
        cyclic = [
            c
            for c in candidates
            if o1 in c.value_of(o2) and o2 in c.value_of(o1)
        ]
        assert len(cyclic) == 4


class TestDovetailSearch:
    def test_finds_constant_tagging_transformation(self):
        """γ: input a unary relation R; output one object per constant,
        valued by it (a genuine dio-transformation)."""
        sin = Schema(relations={"R": D})
        sout = Schema(classes={"P": D})
        input_instance = Instance(sin, relations={"R": ["a", "b"]})

        def acceptor(inp, candidate, steps):
            if steps < 2:
                return False  # "not decided yet" at tiny budgets
            want = set(inp.relations["R"])
            got = [candidate.value_of(o) for o in candidate.classes["P"]]
            return None not in got and set(got) == want and len(got) == len(want)

        result = dovetail_search(acceptor, input_instance, sout, max_oids=3)
        assert result is not None
        assert len(result.image.classes["P"]) == 2
        assert result.all_isomorphic  # genericity ⇒ candidates are copies
        assert result.pair[0] == 2  # found at exactly |constants| oids

    def test_finds_pure_object_output(self):
        """γ ignores the input and outputs a 2-cycle of objects — the
        oids-only case of Proposition 4.2.8."""
        sin = Schema(relations={"R": D})
        sout = Schema(classes={"P": set_of(classref("P"))})
        input_instance = Instance(sin, relations={"R": ["a"]})

        def acceptor(inp, candidate, steps):
            oids = sorted(candidate.classes["P"])
            if len(oids) != 2:
                return False
            o1, o2 = oids
            return candidate.value_of(o1) == OSet([o2]) and candidate.value_of(
                o2
            ) == OSet([o1])

        result = dovetail_search(acceptor, input_instance, sout, max_oids=3)
        assert result is not None
        assert result.pair[0] == 2
        assert result.all_isomorphic

    def test_exhausted_bounds_return_none(self):
        sin = Schema(relations={"R": D})
        sout = Schema(classes={"P": D})
        input_instance = Instance(sin, relations={"R": ["a"]})

        def never(inp, candidate, steps):
            return False

        assert dovetail_search(never, input_instance, sout, max_oids=2) is None
