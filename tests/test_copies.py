"""E8 — Definition 4.2.3 and Theorem 4.2.4: instances with copies."""

import pytest

from repro.errors import InstanceError
from repro.schema import Instance, Schema, are_o_isomorphic
from repro.transform import (
    COPY_RELATION,
    copies_schema,
    eliminate_copies,
    extract_copies,
    is_instance_with_copies,
    make_instance_with_copies,
)
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OTuple


@pytest.fixture
def base():
    schema = Schema(
        relations={"Likes": tuple_of(who=classref("P"), what=D)},
        classes={"P": tuple_of(name=D)},
    )
    o1, o2 = Oid(), Oid()
    instance = Instance(
        schema,
        classes={"P": [o1, o2]},
        nu={o1: OTuple(name="ada"), o2: OTuple(name="bob")},
    )
    instance.add_relation_member("Likes", OTuple(who=o1, what="logic"))
    return schema, instance


class TestCopiesSchema:
    def test_adds_copy_relation(self, base):
        schema, _ = base
        s_bar = copies_schema(schema)
        assert COPY_RELATION in s_bar.relations
        assert s_bar.relations[COPY_RELATION] == set_of(classref("P"))

    def test_requires_a_class(self):
        with pytest.raises(InstanceError):
            copies_schema(Schema(relations={"R": D}))


class TestMakeAndRecognize:
    def test_make_three_copies(self, base):
        schema, instance = base
        i_bar = make_instance_with_copies(instance, 3)
        i_bar.validate()
        assert len(i_bar.relations[COPY_RELATION]) == 3
        assert len(i_bar.classes["P"]) == 6
        ok, reason = is_instance_with_copies(i_bar, schema)
        assert ok, reason

    def test_copies_are_isomorphic_to_original(self, base):
        schema, instance = base
        i_bar = make_instance_with_copies(instance, 2)
        for copy in extract_copies(i_bar, schema):
            assert are_o_isomorphic(copy, instance)

    def test_detects_non_isomorphic_copies(self, base):
        schema, instance = base
        i_bar = make_instance_with_copies(instance, 2)
        # Vandalize one copy: remove a relation fact from one group only.
        victim = next(iter(i_bar.relations["Likes"]))
        i_bar.relations["Likes"].discard(victim)
        ok, reason = is_instance_with_copies(i_bar, schema)
        assert not ok

    def test_detects_overlapping_groups(self, base):
        schema, instance = base
        i_bar = make_instance_with_copies(instance, 2)
        groups = sorted(i_bar.relations[COPY_RELATION], key=repr)
        merged = groups[0].union(list(groups[1])[:1])
        i_bar.relations[COPY_RELATION].discard(groups[0])
        i_bar.relations[COPY_RELATION].add(merged)
        ok, reason = is_instance_with_copies(i_bar, schema)
        assert not ok

    def test_detects_straddling_members(self, base):
        schema, instance = base
        # A member whose oids live in group 0 is fine; fabricate one that
        # straddles by pairing oids of both groups in a single... our type
        # has one oid slot, so instead check the empty-R̄ rejection:
        empty = Instance(copies_schema(schema))
        ok, reason = is_instance_with_copies(empty, schema)
        assert not ok and "empty" in reason


class TestElimination:
    def test_eliminates_to_one_isomorphic_copy(self, base):
        schema, instance = base
        i_bar = make_instance_with_copies(instance, 4)
        chosen = eliminate_copies(i_bar, schema)
        chosen.validate()
        assert are_o_isomorphic(chosen, instance)

    def test_refuses_malformed_input(self, base):
        schema, instance = base
        i_bar = make_instance_with_copies(instance, 2)
        victim = next(iter(i_bar.relations["Likes"]))
        i_bar.relations["Likes"].discard(victim)
        with pytest.raises(InstanceError):
            eliminate_copies(i_bar, schema)
