"""Tests for the standalone Datalog substrate (Section 3.4's baseline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    DatalogProgram,
    DAtom,
    DRule,
    DVar,
    evaluate_inflationary,
    evaluate_naive,
    evaluate_seminaive,
    evaluate_stratified,
    is_stratifiable,
    same_generation_program,
    stratify,
    transitive_closure_program,
    unreachable_program,
    win_move_program,
)
from repro.errors import TypeCheckError
from repro.workloads import parent_forest, path_graph, random_graph, transitive_closure


class TestAst:
    def test_arity_inference_and_check(self):
        x = DVar("x")
        with pytest.raises(TypeCheckError):
            DatalogProgram(
                [
                    DRule(DAtom("P", x), [DAtom("Q", x)]),
                    DRule(DAtom("P", x, x), [DAtom("Q", x)]),
                ]
            )

    def test_edb_idb_split(self):
        prog = transitive_closure_program()
        assert prog.edb == {"E"}
        assert prog.idb == {"T"}

    def test_explicit_edb_clash(self):
        x = DVar("x")
        with pytest.raises(TypeCheckError):
            DatalogProgram([DRule(DAtom("P", x), [DAtom("Q", x)])], edb=["P"])

    def test_safety(self):
        x, y = DVar("x"), DVar("y")
        unsafe = DatalogProgram([DRule(DAtom("P", x, y), [DAtom("Q", x)])])
        with pytest.raises(TypeCheckError):
            unsafe.check_safety()
        safe = transitive_closure_program()
        safe.check_safety()

    def test_negated_head_rejected(self):
        x = DVar("x")
        with pytest.raises(TypeCheckError):
            DRule(DAtom("P", x, positive=False), [DAtom("Q", x)])


class TestStratification:
    def test_tc_single_stratum(self):
        assert len(stratify(transitive_closure_program())) == 1

    def test_unreachable_two_strata(self):
        layers = stratify(unreachable_program())
        assert len(layers) == 2
        assert {r.head.predicate for r in layers[0]} == {"Reach"}
        assert {r.head.predicate for r in layers[1]} == {"Unreach"}

    def test_win_move_not_stratifiable(self):
        assert not is_stratifiable(win_move_program())
        with pytest.raises(TypeCheckError):
            stratify(win_move_program())


class TestEngines:
    def test_tc_on_path(self):
        edges = path_graph(8)
        prog = transitive_closure_program()
        expected = transitive_closure(edges)
        assert evaluate_naive(prog, {"E": set(edges)})["T"] == expected
        assert evaluate_seminaive(prog, {"E": set(edges)})["T"] == expected

    def test_same_generation(self):
        parents, persons = parent_forest(1, 3)
        prog = same_generation_program()
        edb = {"Par": set(parents), "Person": {(p,) for p in persons}}
        out = evaluate_seminaive(prog, edb)
        # siblings are same-generation
        sibs = [p for p in persons if p.endswith("/c0")]
        for s in sibs:
            partner = s[:-3] + "/c1"
            assert (s, partner) in out["SG"]

    def test_stratified_unreachable(self):
        edges = path_graph(4)
        edb = {
            "E": set(edges),
            "Source": {("n0000",)},
            "Node": {(f"n{i:04d}",) for i in range(6)},
        }
        out = evaluate_stratified(unreachable_program(), edb)
        assert out["Unreach"] == {("n0004",), ("n0005",)}

    def test_inflationary_win_move(self):
        out = evaluate_inflationary(win_move_program(), {"Move": {("a", "b"), ("b", "c")}})
        # Inflationary: both a and b acquire Win in the first round.
        assert out["Win"] == {("a",), ("b",)}

    def test_stratified_rejects_unsafe(self):
        x, y = DVar("x"), DVar("y")
        unsafe = DatalogProgram(
            [DRule(DAtom("P", x), [DAtom("Q", y, positive=False), DAtom("R", x)])]
        )
        with pytest.raises(TypeCheckError):
            evaluate_stratified(unsafe, {"Q": set(), "R": {("a",)}})

    def test_constants_in_rules(self):
        x = DVar("x")
        prog = DatalogProgram(
            [DRule(DAtom("Special", x), [DAtom("E", "root", x)])]
        )
        out = evaluate_seminaive(prog, {"E": {("root", "a"), ("other", "b")}})
        assert out["Special"] == {("a",)}


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 12), st.integers(0, 1000))
def test_naive_seminaive_agree_on_random_graphs(n, seed):
    edges = random_graph(n, average_degree=1.5, seed=seed)
    prog = transitive_closure_program()
    expected = transitive_closure(edges)
    assert evaluate_naive(prog, {"E": set(edges)})["T"] == expected
    assert evaluate_seminaive(prog, {"E": set(edges)})["T"] == expected
