"""E9 — Section 4.5: IQL* deletions and arbitrary input/output schemas."""

import pytest

from repro.errors import NonTerminationError
from repro.iql import (
    Equality,
    EvaluatorLimits,
    Program,
    Rule,
    TupleTerm,
    Var,
    atom,
    columns,
    evaluate,
    typecheck_program,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple


class TestRelationDeletion:
    def setup_method(self):
        self.schema = Schema(relations={"R": columns(D, D), "Kill": D})
        x, y = Var("x", D), Var("y", D)
        # delete R(x, y) ← R(x, y), Kill(x): remove rows whose key is marked.
        self.program = typecheck_program(
            Program(
                self.schema,
                rules=[
                    Rule(
                        atom(self.schema, "R", x, y),
                        [atom(self.schema, "R", x, y), atom(self.schema, "Kill", x)],
                        delete=True,
                    )
                ],
                input_names=["R", "Kill"],
                output_names=["R"],
            )
        )

    def test_marked_rows_removed(self):
        inst = Instance(
            self.schema,
            relations={
                "R": [OTuple(A01="a", A02="1"), OTuple(A01="b", A02="2")],
                "Kill": ["a"],
            },
        )
        out = evaluate(self.program, inst)
        assert {t["A01"] for t in out.relations["R"]} == {"b"}

    def test_non_disjoint_io_supported(self):
        # Same relation in input and output — the very thing plain
        # inflationary IQL cannot express (Section 4.5's motivation).
        assert not self.program.has_disjoint_io()


class TestInsertDeleteInteraction:
    def test_delete_wins_within_a_step(self):
        schema = Schema(relations={"Src": D, "Dst": D})
        x = Var("x", D)
        program = typecheck_program(
            Program(
                schema,
                rules=[
                    Rule(atom(schema, "Dst", x), [atom(schema, "Src", x)]),
                    Rule(atom(schema, "Dst", x), [atom(schema, "Src", x)], delete=True),
                ],
                input_names=["Src", "Dst"],
                output_names=["Dst"],
            )
        )
        inst = Instance(schema, relations={"Src": ["a"], "Dst": ["a"]})
        out = evaluate(program, inst)
        # Step 1: the insertion is blocked ('a' already present), the
        # deletion removes it → Dst = {}. Step 2: the insertion re-derives
        # 'a' AND the deletion fires; delete wins within the step, so the
        # state is unchanged → fixpoint with Dst empty.
        assert out.relations["Dst"] == set()

    def test_oscillation_detected(self):
        schema = Schema(relations={"Flag": D, "Switch": D})
        x = Var("x", D)
        program = Program(
            schema,
            rules=[
                # Flag(x) ← Switch(x), ¬Flag(x)  and  delete Flag(x) ← Flag(x)
                Rule(
                    atom(schema, "Flag", x),
                    [atom(schema, "Switch", x), atom(schema, "Flag", x, positive=False)],
                ),
                Rule(atom(schema, "Flag", x), [atom(schema, "Flag", x)], delete=True),
            ],
            input_names=["Switch", "Flag"],
            output_names=["Flag"],
        )
        typecheck_program(program)
        inst = Instance(schema, relations={"Switch": ["a"]})
        with pytest.raises(NonTerminationError):
            evaluate(program, inst, limits=EvaluatorLimits(max_steps=100))


class TestOidDeletionCascade:
    def setup_method(self):
        P = classref("P")
        self.schema = Schema(
            relations={"Uses": tuple_of(u=P), "KillName": D},
            classes={"P": tuple_of(name=D, peer=set_of(P))},
        )

    def build(self):
        o1, o2, o3 = Oid("o1"), Oid("o2"), Oid("o3")
        inst = Instance(
            self.schema,
            classes={"P": [o1, o2, o3]},
            nu={
                o1: OTuple(name="a", peer=OSet([o2])),
                o2: OTuple(name="b", peer=OSet()),
                o3: OTuple(name="c", peer=OSet([o1])),
            },
        )
        inst.add_relation_member("Uses", OTuple(u=o2))
        inst.add_relation_member("KillName", "b")
        return inst, (o1, o2, o3)

    def test_cascade(self):
        P = classref("P")
        p = Var("p", P)
        n = Var("n", D)
        program = typecheck_program(
            Program(
                self.schema,
                rules=[
                    Rule(
                        atom(self.schema, "P", p),
                        [
                            atom(self.schema, "P", p),
                            Equality(p.hat(), TupleTerm(name=n, peer=Var("S", set_of(P)))),
                            atom(self.schema, "KillName", n),
                        ],
                        delete=True,
                    )
                ],
                input_names=["P", "Uses", "KillName"],
                output_names=["P", "Uses"],
            )
        )
        inst, (o1, o2, o3) = self.build()
        out = evaluate(program, inst)
        # o2 deleted; o1 referenced o2 → cascades away; o3 referenced o1 →
        # cascades too. The Uses row mentioning o2 disappears.
        assert out.classes["P"] == set()
        assert out.relations["Uses"] == set()
