"""The dependency/effect analysis layer and the certified scheduler.

Covers the shared per-rule effect summaries (`repro.analysis.effects`),
the per-stage dependency graphs with SCC condensation and strata
(`repro.analysis.depgraph`), the IQL601–IQL604 dataflow diagnostics, the
schedule certificate and its fallback reasons, the scheduled evaluator
(`Evaluator(schedule=True)`) including its stats counters and the IQL601
PreflightWarning, and the `repro analyze` / `repro lint --strict` CLI.
"""

import json
import pathlib
import warnings

import pytest

from repro.__main__ import main
from repro.analysis import (
    PreflightWarning,
    analyze,
    compute_schedule,
    depgraph_pass,
    graphs_to_dot,
    program_graphs,
    render_graphs_text,
    rule_effects,
    stage_graph,
)
from repro.analysis.effects import head_symbol, plane
from repro.iql import Evaluator, Program, Rule, Var, atom, columns
from repro.parser.grammar import program_from_source
from repro.schema import Instance, Schema, are_o_isomorphic
from repro.typesys import D, classref
from repro.values import OTuple

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

TC = """
schema {
  relation E: [A1: D, A2: D];
  relation TC: [A1: D, A2: D];
}
var x, y, z: D
input E
output TC
rules {
  TC(x, y) :- E(x, y).
  TC(x, z) :- TC(x, y), E(y, z).
}
"""

UNSTRATIFIED = """
schema {
  relation E: [A1: D, A2: D];
  relation T: [A1: D, A2: D];
}
var x, y: D
input E
output T
rules {
  T(x, y) :- E(x, y), not T(y, x).
}
"""

DEAD_READ = """
schema {
  relation E: [A1: D];
  relation W: [A1: D];
  relation U: [A1: D];
}
var x: D
input E
output U
rules {
  U(x) :- W(x).
  U(x) :- E(x).
}
"""

CHAIN = """
schema {
  relation E: [A1: D, A2: D];
  relation T: [A1: D, A2: D];
  relation U: [A1: D, A2: D];
}
var x, y, z: D
input E
output U
rules {
  T(x, y) :- E(x, y).
  T(x, z) :- T(x, y), E(y, z).
  U(x, y) :- T(x, y), T(y, x).
}
"""


def edge_instance(program, edges):
    instance = Instance(program.input_schema)
    for a, b in edges:
        instance.add_relation_member("E", OTuple(A1=a, A2=b))
    return instance


# -- effect summaries ---------------------------------------------------------------


class TestEffects:
    def test_tc_rule_reads_and_writes(self):
        program = program_from_source(TC)
        effects = rule_effects(program.rules[1], program.schema)
        assert effects.positive_reads == {"E", "TC"}
        assert effects.writes == {"TC"}
        assert effects.gating_reads == {"E", "TC"}
        assert not effects.negative_reads
        assert not effects.invention_classes
        assert not effects.is_assignment

    def test_negative_literal_reads(self):
        program = program_from_source(UNSTRATIFIED)
        effects = rule_effects(program.rules[0], program.schema)
        assert effects.negative_reads == {"T"}
        assert effects.positive_reads == {"E"}
        assert effects.nonmonotone_reads == {"T"}

    def test_invention_rule_writes_head_and_classes(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        invent = program.stages[1][0]
        effects = rule_effects(invent, program.schema)
        assert effects.writes == {"R_prime", "P", "P_aux"}
        assert effects.invention_classes == {"P", "P_aux"}
        assert effects.positive_reads == {"R0"}

    def test_deref_head_writes_value_plane(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        pour = program.stages[2][0]
        assert head_symbol(pour) == plane("P_aux")
        effects = rule_effects(pour, program.schema)
        assert effects.writes == {"^P_aux"}
        # Body enumerates P/P_aux extents through the variables' types.
        assert {"P", "P_aux", "R", "R_prime"} <= effects.positive_reads

    def test_assignment_head_snapshot_read(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        assign = program.stages[3][0]
        effects = rule_effects(assign, program.schema)
        assert effects.is_assignment
        assert effects.writes == {"^P"}
        # pp^ in the head value dereferences a set-valued class: a
        # snapshot of the growing ν(pp), order-sensitive like negation.
        assert "^P_aux" in effects.extension_reads
        assert "^P_aux" in effects.nonmonotone_reads

    def test_summary_and_json_roundtrip(self):
        program = program_from_source(TC)
        effects = rule_effects(program.rules[1], program.schema)
        assert "reads+ {E, TC}" in effects.summary()
        doc = effects.to_json()
        assert doc["writes"] == ["TC"]
        assert doc["reads_positive"] == ["E", "TC"]


# -- stage graphs --------------------------------------------------------------------


class TestStageGraph:
    def test_tc_sccs_and_strata(self):
        program = program_from_source(TC)
        graph = stage_graph(program.stages[0], program.schema)
        assert graph.sccs == (("E",), ("TC",))  # topological order
        assert graph.recursive == (False, True)
        assert graph.negative_recursive == (False, False)
        assert graph.strata == ((0, 1),)  # both rules own the TC SCC

    def test_chain_splits_into_two_strata(self):
        program = program_from_source(CHAIN)
        graph = stage_graph(program.stages[0], program.schema)
        strata = graph.strata_rules()
        assert len(strata) == 2
        assert [r.head_name() for r in strata[0]] == ["T", "T"]
        assert [r.head_name() for r in strata[1]] == ["U"]

    def test_coupling_merges_writes_without_recursion(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        graph = stage_graph(program.stages[1], program.schema, index=1)
        scc = graph.sccs[graph.rule_scc[0]]
        assert set(scc) == {"R_prime", "P", "P_aux"}
        # Coupling edges alone do not make the SCC recursive.
        assert not graph.recursive[graph.rule_scc[0]]

    def test_negative_edge_marks_scc(self):
        program = program_from_source(UNSTRATIFIED)
        graph = stage_graph(program.stages[0], program.schema)
        index = graph.scc_of["T"]
        assert graph.recursive[index]
        assert graph.negative_recursive[index]


# -- the IQL6xx diagnostics ----------------------------------------------------------


class TestDepgraphPass:
    def test_iql601_unstratified_negation(self):
        program = program_from_source(UNSTRATIFIED)
        codes = {d.code for d in depgraph_pass(program)}
        assert "IQL601" in codes

    def test_iql602_dead_at_entry(self):
        program = program_from_source(DEAD_READ)
        diags = [d for d in depgraph_pass(program) if d.code == "IQL602"]
        assert len(diags) == 1
        assert "W" in diags[0].message

    def test_iql602_sees_earlier_stage_writes(self):
        # W is written by stage 1, so the stage-2 reader is alive.
        source = DEAD_READ.replace(
            "U(x) :- W(x).\n  U(x) :- E(x).",
            "W(x) :- E(x).\n  ;\n  U(x) :- W(x).",
        )
        program = program_from_source(source)
        assert not [d for d in depgraph_pass(program) if d.code == "IQL602"]

    def test_iql602_ignores_self_feeding_loop(self):
        # Mutual recursion with no base case: never live.
        source = DEAD_READ.replace(
            "U(x) :- W(x).\n  U(x) :- E(x).",
            "U(x) :- W(x).\n  W(x) :- U(x).",
        )
        program = program_from_source(source)
        diags = [d for d in depgraph_pass(program) if d.code == "IQL602"]
        assert len(diags) == 2

    def test_iql603_divergent_invention(self):
        program = program_from_source(
            (EXAMPLES / "divergent_invention.iql").read_text()
        )
        codes = {d.code for d in depgraph_pass(program)}
        assert "IQL603" in codes

    def test_iql604_bounded_invention(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        diags = [d for d in depgraph_pass(program) if d.code == "IQL604"]
        assert diags and all(d.severity == "info" for d in diags)
        assert "O(n^1)" in diags[0].message

    def test_report_includes_depgraph_codes(self):
        report = analyze(program_from_source(UNSTRATIFIED))
        assert "IQL601" in {d.code for d in report.warnings}


# -- the schedule certificate --------------------------------------------------------


class TestComputeSchedule:
    def test_tc_certifies_one_stratum(self):
        schedule = compute_schedule(program_from_source(TC))
        assert schedule.fully_scheduled
        assert schedule.stratum_count == 1

    def test_chain_certifies_two_strata(self):
        schedule = compute_schedule(program_from_source(CHAIN))
        assert schedule.fully_scheduled
        assert schedule.stratum_count == 2

    def test_iql601_forces_fallback(self):
        schedule = compute_schedule(program_from_source(UNSTRATIFIED))
        plan = schedule.stages[0]
        assert not plan.scheduled
        assert "IQL601" in plan.fallback_reason

    def test_delete_forces_fallback(self):
        schema = Schema(relations={"E": columns(D), "U": columns(D)})
        x = Var("x", D)
        program = Program(
            schema,
            rules=[
                Rule(atom(schema, "U", x), [atom(schema, "E", x)]),
                Rule(atom(schema, "E", x), [atom(schema, "U", x)], delete=True),
            ],
            input_names=["E"],
            output_names=["U"],
        )
        plan = compute_schedule(program).stages[0]
        assert not plan.scheduled
        assert "deletion" in plan.fallback_reason

    def test_blocking_hazard_forces_fallback(self):
        # The inventing rule reads its own head relation: invention
        # counts depend on firing times, so no schedule is certified.
        program = program_from_source(
            (EXAMPLES / "divergent_invention.iql").read_text()
        )
        plan = compute_schedule(program).stages[0]
        assert not plan.scheduled
        assert "invent" in plan.fallback_reason

    def test_isolated_invention_is_certified(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        schedule = compute_schedule(program)
        assert schedule.fully_scheduled


class TestFallbackTaxonomy:
    """Each blocking construct of ``_stage_fallback`` names itself in the
    ``fallback_reason`` — the reason string is API, tools match on it."""

    def fallback(self, source):
        plan = compute_schedule(program_from_source(source)).stages[0]
        assert not plan.scheduled
        assert plan.strata is None
        return plan.fallback_reason

    def test_choose_names_genericity(self):
        reason = self.fallback(
            """
            schema { relation S: [A1: D, A2: D]; relation Pick: [A1: D, A2: D]; }
            var x, y: D
            input S
            output Pick
            rules { Pick(x, y) :- S(x, y), choose. }
            """
        )
        assert "choose" in reason

    def test_enumeration_names_type_interpretations(self):
        # Pow(X) ← X = X is not range-restricted: X ranges over a type
        # interpretation, which every stage write grows.
        reason = self.fallback(
            """
            schema { relation Pow: {D}; relation S: D; }
            input S
            output Pow
            rules { Pow(X) :- X = X. }
            """
        )
        assert "enumerate type interpretations" in reason

    def test_stage_written_negation_names_order_sensitivity(self):
        # Stratifiable in the classical sense (no negative cycle), but
        # inside ONE inflationary stage the negative read of T is still
        # order-sensitive, so no schedule is certified.
        reason = self.fallback(
            """
            schema { relation E: D; relation T: D; relation U: D; }
            var x: D
            input E
            output U
            rules {
              T(x) :- E(x).
              U(x) :- E(x), not T(x).
            }
            """
        )
        assert "non-monotone read" in reason and "T" in reason

    def test_assignment_reading_stage_written_names_firing_times(self):
        reason = self.fallback(
            """
            schema { relation Seed: [A1: P]; relation Mark: [A1: P]; class P: []; }
            var p: P
            input Seed, P
            output Mark, P
            rules {
              Mark(p) :- Seed(p).
              p^ = [] :- Mark(p).
            }
            """
        )
        assert "weak-assignment" in reason and "firing times" in reason


# -- the scheduled evaluator ---------------------------------------------------------


class TestScheduledEvaluator:
    def test_scheduled_equals_monolithic_on_chain(self):
        program = program_from_source(CHAIN)
        edges = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        scheduled = Evaluator(program, schedule=True).run(
            edge_instance(program, edges)
        )
        reference = Evaluator(program, seminaive=False, indexed=False).run(
            edge_instance(program, edges)
        )
        assert scheduled.output == reference.output
        assert scheduled.stats.strata == 2
        assert scheduled.stats.schedule_fallbacks == 0

    def test_dirty_tracking_skips_clean_rules(self):
        # With semi-naive off, every stratum runs the dirty-tracked naive
        # loop; the base rule reads only E, so it is clean after step 1
        # while the recursive rule keeps growing TC.
        program = program_from_source(TC)
        edges = [(f"n{i}", f"n{i + 1}") for i in range(6)]
        scheduled = Evaluator(program, schedule=True, seminaive=False).run(
            edge_instance(program, edges)
        )
        reference = Evaluator(program, seminaive=False, indexed=False).run(
            edge_instance(program, edges)
        )
        assert scheduled.output == reference.output
        assert scheduled.stats.rules_skipped_clean > 0

    def test_iql601_fallback_warns_and_matches(self):
        program = program_from_source(UNSTRATIFIED)
        edges = [("a", "b"), ("b", "a"), ("b", "c")]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            scheduled = Evaluator(program, schedule=True).run(
                edge_instance(program, edges)
            )
        assert any(
            issubclass(w.category, PreflightWarning) and "IQL601" in str(w.message)
            for w in caught
        )
        assert scheduled.stats.schedule_fallbacks == 1
        reference = Evaluator(program, seminaive=False, indexed=False).run(
            edge_instance(program, edges)
        )
        assert scheduled.output == reference.output

    def test_scheduled_invention_is_isomorphic(self):
        program = program_from_source((EXAMPLES / "graph_objects.iql").read_text())
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        instance = Instance(program.input_schema)
        for a, b in edges:
            instance.add_relation_member("R", OTuple(A1=a, A2=b))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            scheduled = Evaluator(program, schedule=True).run(instance.copy())
        reference = Evaluator(program, seminaive=False, indexed=False).run(
            instance.copy()
        )
        assert are_o_isomorphic(scheduled.output, reference.output)
        assert scheduled.stats.strata >= 4

    def test_schedule_disabled_under_trace(self):
        program = program_from_source(TC)
        evaluator = Evaluator(program, schedule=True, trace=True)
        assert not evaluator.schedule


# -- CLI -----------------------------------------------------------------------------


class TestCli:
    @pytest.fixture
    def tc_path(self, tmp_path):
        path = tmp_path / "tc.iql"
        path.write_text(TC)
        return str(path)

    @pytest.fixture
    def unstratified_path(self, tmp_path):
        path = tmp_path / "unstratified.iql"
        path.write_text(UNSTRATIFIED)
        return str(path)

    def test_analyze_text(self, tc_path, capsys):
        assert main(["analyze", tc_path]) == 0
        out = capsys.readouterr().out
        assert "stratum 1" in out
        assert "certified" in out

    def test_analyze_json(self, tc_path, capsys):
        assert main(["analyze", tc_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schedule"] == [{"stage": 1, "strata": [2]}]
        assert doc["stages"][0]["nodes"] == ["E", "TC"]

    def test_analyze_dot(self, tc_path, capsys):
        assert main(["analyze", tc_path, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph depgraph {")
        assert "cluster_stage1" in out

    def test_analyze_reports_iql6xx(self, unstratified_path, capsys):
        assert main(["analyze", unstratified_path]) == 0
        out = capsys.readouterr().out
        assert "IQL601" in out
        assert "monolithic fallback" in out

    def test_lint_strict_promotes_warnings(self, unstratified_path, capsys):
        assert main(["lint", unstratified_path]) == 0
        capsys.readouterr()
        assert main(["lint", unstratified_path, "--strict"]) == 1
        out = capsys.readouterr().out
        assert "strict mode" in out

    def test_lint_strict_json(self, unstratified_path, tc_path, capsys):
        assert main(["lint", unstratified_path, "--strict", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["strict"] is True and doc["ok"] is False
        assert main(["lint", tc_path, "--strict", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True

    def test_run_schedule_stats(self, tc_path, tmp_path, capsys):
        from repro import io

        program = program_from_source(TC)
        instance = edge_instance(program, [("a", "b"), ("b", "c")])
        data = tmp_path / "edges.json"
        data.write_text(io.dumps(instance))
        assert (
            main(["run", tc_path, "--input", str(data), "--schedule", "--stats"])
            == 0
        )
        err = capsys.readouterr().err
        assert "strata               1" in err
        assert "schedule fallbacks   0" in err


class TestAnalyzeJsonRoundTrip:
    """`repro analyze --format json` reproduces the IQL601-IQL604
    diagnostics of a direct `depgraph_pass` run exactly — code, severity,
    message, span and rule label all survive the JSON renderer."""

    CASES = {
        "IQL601": UNSTRATIFIED,
        "IQL602": DEAD_READ,
        "IQL603": (EXAMPLES / "divergent_invention.iql"),
        "IQL604": (EXAMPLES / "graph_objects.iql"),
    }

    @pytest.mark.parametrize("code", sorted(CASES))
    def test_roundtrip(self, code, tmp_path, capsys):
        source = self.CASES[code]
        if isinstance(source, pathlib.Path):
            source = source.read_text()
        path = tmp_path / "program.iql"
        path.write_text(source)
        assert main(["analyze", str(path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rendered = [d for d in doc["diagnostics"] if d["code"].startswith("IQL6")]
        direct = [d.to_json() for d in depgraph_pass(program_from_source(source))]
        assert rendered == direct
        assert code in [d["code"] for d in rendered]
        # Spans survive: every depgraph diagnostic anchored to a rule
        # carries its source location through the renderer.
        for d in rendered:
            if "rule" in d:
                assert d["span"]["line"] >= 1 and d["span"]["column"] >= 1
