"""E6 — Theorem 4.1.3: IQL programs denote db-transformations.

Determinacy (condition 4) and genericity (condition 3) are falsifiable on
probes: different oid factories, random DO-isomorphisms of the input.
"""


from repro.transform import (
    check_constants_preserved,
    check_determinacy,
    check_genericity,
    graph_instance,
    graph_to_class_program,
    powerset_input,
    powerset_restricted_program,
    quadrangle_choose_program,
    quadrangle_input,
    union_encode_program,
    union_instance,
)
from repro.workloads import cycle_graph, random_graph


class TestDeterminacy:
    def test_graph_encoding(self):
        report = check_determinacy(
            graph_to_class_program(), graph_instance(cycle_graph(3)), runs=3
        )
        assert report.all_isomorphic, report.witness

    def test_powerset(self):
        report = check_determinacy(
            powerset_restricted_program(), powerset_input(["a", "b"]), runs=2
        )
        assert report.all_isomorphic, report.witness

    def test_union_encoding(self):
        report = check_determinacy(
            union_encode_program(),
            union_instance({"a": ("a", "b"), "b": "a"}),
            runs=3,
        )
        assert report.all_isomorphic, report.witness

    def test_quadrangle_with_choose(self):
        report = check_determinacy(
            quadrangle_choose_program(), quadrangle_input("a", "b"), runs=2
        )
        assert report.all_isomorphic, report.witness


class TestGenericity:
    def test_graph_encoding(self):
        report = check_genericity(
            graph_to_class_program(), graph_instance(random_graph(4, seed=7)), probes=2
        )
        assert report.all_generic, report.witness

    def test_quadrangle_with_choose(self):
        report = check_genericity(
            quadrangle_choose_program(), quadrangle_input("a", "b"), probes=2
        )
        assert report.all_generic, report.witness


class TestConstantPreservation:
    def test_no_new_constants(self):
        assert check_constants_preserved(
            graph_to_class_program(), graph_instance(cycle_graph(4))
        )
        assert check_constants_preserved(
            powerset_restricted_program(), powerset_input(["a", "b"])
        )
