"""Differential tests: the optimized engine against the reference engine.

``Evaluator(seminaive=False, indexed=False)`` is the executable
specification — a direct transcription of the paper's inflationary
one-step operator with generate-and-test joins. The indexed, planned,
semi-naive engine must agree with it on *every* program: exactly (ground
facts) when the program is invention-free, up to O-isomorphism when it
invents oids (invented identities are fresh by construction, so only the
shape is determined — Section 4.1).

The generator below emits random single-stage programs over a fixed
schema — recursive positive atoms, fully-bound negation, equalities,
constants, and (in a fifth of the seeds) oid invention — and random
small input instances. 220 seeds run in a few seconds.
"""

import random

import pytest

from repro.iql import Evaluator, Program, Rule, Var, atom, columns
from repro.iql.literals import Equality
from repro.schema import Instance, Schema, are_o_isomorphic
from repro.typesys import D, classref, tuple_of
from repro.values import OTuple

CONSTS = ["a", "b", "c"]


def make_schema():
    return Schema(
        relations={
            "E": columns(D, D),
            "T": columns(D, D),
            "U": columns(D),
            "TC": columns(D, classref("C")),
        },
        classes={"C": tuple_of(a=D)},
    )


def random_program(schema, rng, allow_invention):
    """A random single-stage program: heads into T/U/TC, bodies over E/T/U."""
    variables = [Var(f"x{i}", D) for i in range(4)]
    rules = []
    for _ in range(rng.randint(1, 3)):
        body = []
        bound = []
        for _ in range(rng.randint(1, 3)):
            name = rng.choice(["E", "E", "T", "U"])
            if name == "U":
                v = rng.choice(variables)
                body.append(atom(schema, "U", v))
                bound.append(v)
            else:
                v1, v2 = rng.choice(variables), rng.choice(variables)
                body.append(atom(schema, name, v1, v2))
                bound.extend([v1, v2])
        if rng.random() < 0.4:  # fully-bound negative literal
            name = rng.choice(["E", "T", "U"])
            if name == "U":
                body.append(atom(schema, "U", rng.choice(bound), positive=False))
            else:
                body.append(
                    atom(
                        schema, name, rng.choice(bound), rng.choice(bound),
                        positive=False,
                    )
                )
        if rng.random() < 0.3:  # equality filter between bound variables
            left, right = rng.choice(bound), rng.choice(bound)
            body.append(Equality(left, right, positive=rng.random() < 0.8))
        if allow_invention and rng.random() < 0.5:
            head = atom(
                schema, "TC", rng.choice(bound), Var("p", classref("C"))
            )
        elif rng.random() < 0.5:
            head = atom(schema, "T", rng.choice(bound), rng.choice(bound))
        else:
            head = atom(schema, "U", rng.choice(bound))
        rules.append(Rule(head, body))
    return Program(
        schema,
        rules=rules,
        input_names=["E", "U"],
        output_names=["T", "U", "TC", "C"],
    )


def random_instance(schema, rng):
    instance = Instance(schema.project(["E", "U"]))
    for _ in range(rng.randint(1, 6)):
        instance.add_relation_member(
            "E", OTuple(A01=rng.choice(CONSTS), A02=rng.choice(CONSTS))
        )
    for _ in range(rng.randint(0, 2)):
        instance.add_relation_member("U", OTuple(A01=rng.choice(CONSTS)))
    return instance


def run_differential(seed):
    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    program = random_program(schema, rng, allow_invention)
    instance = random_instance(schema, rng)
    optimized = (
        Evaluator(program, seminaive=True, indexed=True).run(instance.copy()).output
    )
    reference = (
        Evaluator(program, seminaive=False, indexed=False)
        .run(instance.copy())
        .output
    )
    if all(rule.is_invention_free() for rule in program.rules):
        assert optimized == reference, f"seed {seed}: exact disagreement"
    else:
        assert are_o_isomorphic(optimized, reference), (
            f"seed {seed}: not O-isomorphic"
        )


@pytest.mark.parametrize("seed", range(220))
def test_optimized_engine_matches_reference(seed):
    run_differential(seed)


# -- the certified scheduler (Evaluator(schedule=True)) ------------------------------
#
# Same oracle, different engine: the SCC-stratified scheduler must agree
# with the monolithic reference on every program — by running the
# certified strata when the analysis proves the stage re-orderable, and
# by falling back to the monolithic fixpoint (IQL601 and the other
# uncertifiable shapes) otherwise. A quarter of the seeds additionally
# inject a negation-through-recursion rule so the IQL601 fallback path
# is exercised, and the rule lists are split into two stages half the
# time so cross-stage liveness and per-stage scheduling both run.


def random_scheduled_program(schema, rng, allow_invention, unstratified):
    program = random_program(schema, rng, allow_invention)
    rules = list(program.rules)
    if unstratified:
        x, y = Var("x0", D), Var("x1", D)
        rules.append(
            Rule(
                atom(schema, "T", x, y),
                [atom(schema, "E", x, y), atom(schema, "T", y, x, positive=False)],
            )
        )
    if len(rules) > 1 and rng.random() < 0.5:
        split = rng.randrange(1, len(rules))
        stages = [rules[:split], rules[split:]]
        return Program(
            schema,
            stages=stages,
            input_names=program.input_names,
            output_names=program.output_names,
        )
    return Program(
        schema,
        rules=rules,
        input_names=program.input_names,
        output_names=program.output_names,
    )


def run_scheduled_differential(seed):
    import warnings

    from repro.analysis import PreflightWarning

    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    unstratified = seed % 4 == 1
    program = random_scheduled_program(schema, rng, allow_invention, unstratified)
    instance = random_instance(schema, rng)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        scheduled_result = Evaluator(program, schedule=True).run(instance.copy())
    scheduled = scheduled_result.output
    reference = (
        Evaluator(program, seminaive=False, indexed=False)
        .run(instance.copy())
        .output
    )
    if unstratified:
        # The injected rule makes some stage IQL601-unstratifiable: the
        # scheduler must fall back with a PreflightWarning, not schedule.
        assert scheduled_result.stats.schedule_fallbacks >= 1, (
            f"seed {seed}: expected an IQL601 fallback"
        )
        assert any(
            issubclass(w.category, PreflightWarning) and "IQL601" in str(w.message)
            for w in caught
        ), f"seed {seed}: missing the IQL601 PreflightWarning"
    if all(rule.is_invention_free() for rule in program.rules):
        assert scheduled == reference, f"seed {seed}: exact disagreement"
    else:
        assert are_o_isomorphic(scheduled, reference), (
            f"seed {seed}: not O-isomorphic"
        )


@pytest.mark.parametrize("seed", range(220))
def test_scheduled_engine_matches_reference(seed):
    run_scheduled_differential(seed)


# -- the rule compiler (Evaluator(compile=True)) -------------------------------------
#
# Same oracle again for the compiled closure kernels. Two thirds of the
# seeds run the monolithic engine (γ1 kernels + compiled semi-naive
# where the stage qualifies); the rest run under the certified scheduler
# so the per-stratum semi-naive loop's delta kernels are exercised too.
# The generated programs contain none of the fallback constructs, so
# every rule must actually compile — a silent per-rule fallback would
# still pass the equivalence check but not the counters.


def run_compiled_differential(seed):
    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    program = random_program(schema, rng, allow_invention)
    instance = random_instance(schema, rng)
    schedule = seed % 3 == 2
    result = Evaluator(program, schedule=schedule, compile=True).run(instance.copy())
    compiled = result.output
    reference = (
        Evaluator(program, seminaive=False, indexed=False)
        .run(instance.copy())
        .output
    )
    assert result.stats.rules_interpreted == 0, (
        f"seed {seed}: unexpected compile fallback "
        f"{result.stats.compile_fallback_reasons}"
    )
    assert result.stats.rules_compiled == len(program.rules), f"seed {seed}"
    if all(rule.is_invention_free() for rule in program.rules):
        assert compiled == reference, f"seed {seed}: exact disagreement"
    else:
        assert are_o_isomorphic(compiled, reference), (
            f"seed {seed}: not O-isomorphic"
        )


@pytest.mark.parametrize("seed", range(220))
def test_compiled_engine_matches_reference(seed):
    run_compiled_differential(seed)


# -- the adaptive planner (Evaluator(cost_planning=...)) -----------------------------
#
# Join order is the one thing the cost model is allowed to change, so the
# oracle is the sharpest available: the same optimized engine with the
# static ranks must agree with the cost-based default on every program.
# A second sweep sets replan_ratio=1.0 — "any inexact estimate is drift" —
# which forces mid-fixpoint evictions, feedback-driven replans and (on the
# compiled seeds) kernel invalidation on as many rounds as the cap allows,
# the adversarial schedule for the feedback loop.


def run_planner_differential(seed, replan_ratio=None):
    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    program = random_program(schema, rng, allow_invention)
    instance = random_instance(schema, rng)
    static = (
        Evaluator(program, cost_planning=False).run(instance.copy()).output
    )
    kwargs = {"compile": seed % 3 == 2}
    if replan_ratio is not None:
        kwargs["replan_ratio"] = replan_ratio
    costed = Evaluator(program, **kwargs).run(instance.copy()).output
    if all(rule.is_invention_free() for rule in program.rules):
        assert costed == static, f"seed {seed}: exact disagreement"
    else:
        assert are_o_isomorphic(costed, static), f"seed {seed}: not O-isomorphic"


@pytest.mark.parametrize("seed", range(220))
def test_costed_planner_matches_static(seed):
    run_planner_differential(seed)


@pytest.mark.parametrize("seed", range(220))
def test_forced_replanning_matches_static(seed):
    run_planner_differential(seed, replan_ratio=1.0)


# -- the certified parallel executor (Evaluator(parallel=N)) -------------------------
#
# Same program generator as the scheduled sweep — including the IQL601
# seeds and the invention seeds, which the IQL8xx certificate forces
# back to serial (IQL802 or an unscheduled stage) — so the fallback
# paths are exercised as heavily as the concurrent ones. The oracle is
# the serial scheduled+compiled engine: for invention-free programs the
# parallel fact set must be *exactly* equal (concurrent strata write
# disjoint symbols; partitioned rounds merge into the same inflationary
# fixpoint); invention seeds compare up to O-isomorphism because batch
# scheduling may reorder hazard strata of different levels, renaming
# the (fresh-by-construction) invented oids.


def run_parallel_differential(seed, backend="thread", workers=4):
    import warnings

    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    unstratified = seed % 4 == 1
    program = random_scheduled_program(schema, rng, allow_invention, unstratified)
    instance = random_instance(schema, rng)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        evaluator = Evaluator(
            program, parallel=workers, compile=True, backend=backend
        )
        try:
            parallel_result = evaluator.run(instance.copy())
        finally:
            evaluator.close()
        serial = (
            Evaluator(program, schedule=True, compile=True)
            .run(instance.copy())
            .output
        )
    parallel = parallel_result.output
    if all(rule.is_invention_free() for rule in program.rules):
        assert parallel == serial, f"seed {seed}: exact disagreement"
    else:
        assert are_o_isomorphic(parallel, serial), (
            f"seed {seed}: not O-isomorphic"
        )


@pytest.mark.parametrize("seed", range(220))
def test_parallel_engine_matches_serial(seed):
    run_parallel_differential(seed)


def run_process_differential(seed):
    """One seed of the shared-nothing sweep: 2 process workers vs serial.

    Exactness is the interesting bit: a worker's derivations cross a
    pickling boundary and must re-canonicalize into the coordinator's
    intern store with oid identity intact — any leak shows up here as an
    equality (or isomorphism) failure. The CI smoke runs seeds 0..39 of
    this function; tier-1 runs all 220.
    """
    run_parallel_differential(seed, backend="process", workers=2)


@pytest.mark.parametrize("seed", range(220))
def test_process_engine_matches_serial(seed):
    run_process_differential(seed)
