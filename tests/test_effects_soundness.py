"""Effects soundness: observed runtime writes ⊆ declared ``RuleEffects`` writes.

Every IQL801 independence verdict — and through it every concurrent
batch the parallel executor is allowed to run — rests on one premise:
the static write sets of :func:`repro.analysis.effects.rule_effects`
over-approximate everything evaluation actually mutates. This file
checks that premise dynamically: the four add-direction
:class:`~repro.schema.instance.Instance` mutators are instrumented to
record the symbol they touch (relation name, class extent name, or the
``^P`` value plane behind a set-element/weak-assignment write), a full
evaluation runs, and every observed symbol must be declared by some
rule of the program.

Removal mutators are deliberately *not* instrumented: an IQL* deletion
cascade may touch arbitrary reachable symbols, which is exactly why
deletion is an IQL802 hazard and never runs concurrently — there is no
per-rule write set to be sound against.
"""

import random
import warnings
from contextlib import contextmanager

import pytest

from repro.analysis.effects import plane, rule_effects
from repro.iql import (
    Equality,
    Evaluator,
    Membership,
    Program,
    Rule,
    TupleTerm,
    Var,
    atom,
    columns,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from tests.test_differential import (
    make_schema,
    random_instance,
    random_scheduled_program,
)


def declared_writes(program):
    symbols = set()
    for rule in program.rules:
        symbols |= rule_effects(rule, program.schema).writes
    return symbols


@contextmanager
def recorded_writes():
    """Patch the add-direction Instance mutators to log touched symbols."""
    observed = set()
    originals = {
        name: getattr(Instance, name)
        for name in (
            "add_relation_member",
            "add_class_member",
            "add_set_element",
            "assign",
        )
    }

    def record_relation(self, name, value):
        observed.add(name)
        return originals["add_relation_member"](self, name, value)

    def record_class(self, name, oid):
        observed.add(name)
        return originals["add_class_member"](self, name, oid)

    def record_set_element(self, oid, element):
        observed.add(plane(self.class_of(oid)))
        return originals["add_set_element"](self, oid, element)

    def record_assign(self, oid, value):
        observed.add(plane(self.class_of(oid)))
        return originals["assign"](self, oid, value)

    Instance.add_relation_member = record_relation
    Instance.add_class_member = record_class
    Instance.add_set_element = record_set_element
    Instance.assign = record_assign
    try:
        yield observed
    finally:
        for name, method in originals.items():
            setattr(Instance, name, method)


def assert_sound(program, instance, **evaluator_kwargs):
    declared = declared_writes(program)
    with recorded_writes() as observed:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            Evaluator(program, **evaluator_kwargs).run(instance)
    undeclared = observed - declared
    assert not undeclared, (
        f"evaluation wrote {sorted(undeclared)} but rules declare "
        f"only {sorted(declared)}"
    )
    return observed


# -- the 220-seed corpus -------------------------------------------------------------
#
# The same generator the differential sweeps use: recursion, negation,
# equalities, oid invention on a fifth of the seeds, an unstratifiable
# stage on a quarter (so the monolithic IQL601 fallback engine is
# instrumented too), and multi-stage splits half the time. Both the
# scheduled engine and the reference engine run under instrumentation —
# soundness must hold for every execution strategy, not just one.


@pytest.mark.parametrize("seed", range(220))
def test_observed_writes_are_declared(seed):
    rng = random.Random(seed)
    schema = make_schema()
    program = random_scheduled_program(schema, rng, seed % 5 == 0, seed % 4 == 1)
    instance = random_instance(schema, rng)
    observed = assert_sound(program, instance.copy(), schedule=True, compile=True)
    assert_sound(program, instance.copy(), seminaive=False, indexed=False)
    # A derivation-free seed observes nothing; anything observed must be
    # declared (non-vacuity of the harness is pinned by the plane test).
    assert observed <= declared_writes(program)


# -- the value planes ----------------------------------------------------------------
#
# The random corpus never emits ``x̂(t)`` or ``x̂ = t`` heads, so the
# plane bookkeeping (footnote 6: those heads grow ν, not the extent) is
# pinned down by a deterministic program instead: set-element writes
# must surface as ^Q and weak assignments as ^T — and both must already
# be declared by the static effect sets.


def plane_schema():
    return Schema(
        relations={"S": columns(D)},
        classes={"T": tuple_of(a=D), "Q": set_of(D)},
    )


def plane_program(schema):
    x = Var("x", D)
    t = Var("t", classref("T"))
    q = Var("q", classref("Q"))
    rules = [
        Rule(atom(schema, "T", Var("p", classref("T"))), [atom(schema, "S", x)]),
        Rule(
            Equality(t.hat(), TupleTerm(a=x)),
            [atom(schema, "T", t), atom(schema, "S", x)],
        ),
        Rule(atom(schema, "Q", Var("r", classref("Q"))), [atom(schema, "S", x)]),
        Rule(
            Membership(q.hat(), x),
            [atom(schema, "Q", q), atom(schema, "S", x)],
        ),
    ]
    return Program(
        schema,
        rules=rules,
        input_names=["S"],
        output_names=["S", "T", "Q"],
    )


def test_plane_writes_are_declared():
    from repro.values import OTuple

    schema = plane_schema()
    program = plane_program(schema)
    instance = Instance(schema.project(["S"]))
    instance.add_relation_member("S", OTuple(A01="a"))
    observed = assert_sound(program, instance)
    # The ★ assignment and the set-element head actually fired — the
    # subset check above is not vacuously true for the planes.
    assert {"^T", "^Q", "T", "Q"} <= observed
    declared = declared_writes(program)
    assert {"^T", "^Q"} <= declared


def test_instrumentation_detects_an_undeclared_write():
    """The harness itself must be falsifiable: a write outside every
    declared set has to be caught, otherwise the 220-seed sweep proves
    nothing."""
    schema = make_schema()
    x, y = Var("x0", D), Var("x1", D)
    program = Program(
        schema,
        rules=[Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)])],
        input_names=["E", "U"],
        output_names=["T", "U"],
    )
    declared = declared_writes(program)
    assert declared == {"T"}
    from repro.values import OTuple

    instance = Instance(schema.project(["E", "U"]))
    instance.add_relation_member("E", OTuple(A01="a", A02="b"))
    with recorded_writes() as observed:
        result = Evaluator(program).run(instance)
        # Simulate a rogue write the static analysis never declared.
        result.full.add_relation_member("U", OTuple(A01="z"))
    assert "U" in observed - declared
