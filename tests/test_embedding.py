"""E11 — Section 3.4: Datalog programs run verbatim under IQL.

"Each Datalog program can be viewed as a valid IQL program on a relational
schema, and its Datalog and IQL semantics are identical." These tests
compare the two engines fact-for-fact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    database_to_instance,
    datalog_to_iql,
    evaluate_inflationary,
    evaluate_seminaive,
    evaluate_stratified,
    instance_to_database,
    same_generation_program,
    transitive_closure_program,
    unreachable_program,
    win_move_program,
)
from repro.iql import classify, evaluate, typecheck_program
from repro.workloads import parent_forest, path_graph, random_graph


def run_iql(dprog, edb, semantics="inflationary"):
    iql_prog = typecheck_program(datalog_to_iql(dprog, semantics=semantics))
    instance = database_to_instance(dprog, edb, names=dprog.edb)
    return instance_to_database(evaluate(iql_prog, instance))


class TestEmbedding:
    def test_tc_identical(self):
        edges = path_graph(6)
        dprog = transitive_closure_program()
        reference = evaluate_seminaive(dprog, {"E": set(edges)})
        assert run_iql(dprog, {"E": set(edges)})["T"] == reference["T"]

    def test_embedded_tc_is_iqlrr(self):
        prog = datalog_to_iql(transitive_closure_program())
        assert classify(prog).is_iql_rr

    def test_same_generation_identical(self):
        parents, persons = parent_forest(2, 3)
        dprog = same_generation_program()
        edb = {"Par": set(parents), "Person": {(p,) for p in persons}}
        reference = evaluate_seminaive(dprog, edb)
        assert run_iql(dprog, edb)["SG"] == reference["SG"]

    def test_stratified_negation_identical(self):
        edges = path_graph(4)
        dprog = unreachable_program()
        edb = {
            "E": set(edges),
            "Source": {("n0000",)},
            "Node": {(f"n{i:04d}",) for i in range(6)},
        }
        reference = evaluate_stratified(dprog, edb)
        got = run_iql(dprog, edb, semantics="stratified")
        assert got["Unreach"] == reference["Unreach"]

    def test_inflationary_negation_identical(self):
        dprog = win_move_program()
        edb = {"Move": {("a", "b"), ("b", "c"), ("c", "d")}}
        reference = evaluate_inflationary(dprog, edb)
        assert run_iql(dprog, edb)["Win"] == reference["Win"]

    def test_database_instance_round_trip(self):
        dprog = transitive_closure_program()
        edb = {"E": {("a", "b"), ("b", "c")}}
        inst = database_to_instance(dprog, edb, names=dprog.edb)
        assert instance_to_database(inst)["E"] == edb["E"]


@settings(max_examples=8, deadline=None)
@given(st.integers(2, 8), st.integers(0, 500))
def test_iql_matches_datalog_on_random_graphs(n, seed):
    edges = random_graph(n, average_degree=1.5, seed=seed)
    dprog = transitive_closure_program()
    reference = evaluate_seminaive(dprog, {"E": set(edges)})
    assert run_iql(dprog, {"E": set(edges)})["T"] == reference["T"]
