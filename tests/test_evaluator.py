"""Tests for the naive inflationary evaluator (Section 3.2)."""

import pytest

from repro.errors import EvaluationError, NonTerminationError
from repro.iql import (
    Const,
    Equality,
    EvaluatorLimits,
    Membership,
    PrefixedOidFactory,
    Program,
    Rule,
    TupleTerm,
    Var,
    atom,
    columns,
    evaluate,
    evaluate_full,
    typecheck_program,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple
from repro.workloads import path_graph, transitive_closure

from tests.conftest import edge_instance


class TestDatalogFragment:
    def test_transitive_closure(self, tc_program, tc_schema):
        edges = path_graph(6)
        out = evaluate(tc_program, edge_instance(tc_schema, edges))
        got = {(t["A01"], t["A02"]) for t in out.relations["T"]}
        assert got == transitive_closure(edges)

    def test_projection_hides_input(self, tc_program, tc_schema):
        out = evaluate(tc_program, edge_instance(tc_schema, path_graph(3)))
        assert set(out.relations) == {"T"}

    def test_input_schema_mismatch_rejected(self, tc_program):
        wrong = Instance(Schema(relations={"X": D}))
        with pytest.raises(EvaluationError):
            evaluate(tc_program, wrong)

    def test_stats(self, tc_program, tc_schema):
        result = evaluate_full(tc_program, edge_instance(tc_schema, path_graph(4)))
        assert result.stats.facts_added == 6  # closure of a 3-edge path
        assert result.stats.oids_invented == 0
        assert result.stats.steps >= 2


class TestInvention:
    def setup_method(self):
        self.schema = Schema(
            relations={"S": D, "RP": columns(D, classref("P"))},
            classes={"P": tuple_of(tag=D)},
        )
        x = Var("x", D)
        p = Var("p", classref("P"))
        self.program = typecheck_program(
            Program(
                self.schema,
                rules=[Rule(atom(self.schema, "RP", x, p), [atom(self.schema, "S", x)])],
                input_names=["S"],
                output_names=["RP", "P"],
            )
        )

    def input(self, *elements):
        return Instance(self.schema.project(["S"]), relations={"S": list(elements)})

    def test_one_oid_per_valuation(self):
        out = evaluate(self.program, self.input("a", "b", "c"))
        assert len(out.classes["P"]) == 3
        assert len(out.relations["RP"]) == 3

    def test_invention_blocked_when_head_satisfiable(self):
        # Run to fixpoint: a second step must not re-invent for the same x.
        result = evaluate_full(self.program, self.input("a"))
        assert result.stats.oids_invented == 1

    def test_invented_oids_have_default_values(self):
        out = evaluate(self.program, self.input("a"))
        (oid,) = out.classes["P"]
        assert out.value_of(oid) is None  # non-set class: undefined

    def test_invented_set_valued_default_is_empty(self):
        schema = Schema(
            relations={"S": D, "RQ": columns(D, classref("Q"))},
            classes={"Q": set_of(D)},
        )
        x, q = Var("x", D), Var("q", classref("Q"))
        program = typecheck_program(
            Program(
                schema,
                rules=[Rule(atom(schema, "RQ", x, q), [atom(schema, "S", x)])],
                input_names=["S"],
                output_names=["RQ", "Q"],
            )
        )
        out = evaluate(program, Instance(schema.project(["S"]), relations={"S": ["a"]}))
        (oid,) = out.classes["Q"]
        assert out.value_of(oid) == OSet()

    def test_oid_factory_controls_names(self):
        out = evaluate(
            self.program, self.input("a"), oid_factory=PrefixedOidFactory("left")
        )
        (oid,) = out.classes["P"]
        assert oid.name.startswith("left:")

    def test_max_invented_guard(self):
        # A self-feeding invention rule diverges; the guard must trip.
        schema = Schema(
            relations={"R3": columns(classref("P"), classref("P")), "S": classref("P")},
            classes={"P": tuple_of(tag=D)},
        )
        x, y, z = (Var(n, classref("P")) for n in "xyz")
        diverging = typecheck_program(
            Program(
                schema,
                rules=[Rule(atom(schema, "R3", y, z), [atom(schema, "R3", x, y)])],
                input_names=["R3", "P"],
                output_names=["R3"],
            )
        )
        o1, o2 = Oid(), Oid()
        start = Instance(schema.project(["R3", "P"]), classes={"P": [o1, o2]})
        start.add_relation_member("R3", OTuple(A01=o1, A02=o2))
        with pytest.raises(NonTerminationError):
            evaluate(diverging, start, limits=EvaluatorLimits(max_steps=50))


class TestWeakAssignment:
    def setup_method(self):
        self.schema = Schema(
            relations={"Seed": columns(D, classref("P")), "V": D},
            classes={"P": tuple_of(val=D)},
        )

    def program(self, rules):
        return typecheck_program(
            Program(
                self.schema,
                rules=rules,
                input_names=["Seed", "P", "V"],
                output_names=["P"],
            )
        )

    def input_with_oid(self):
        o = Oid("target")
        inst = Instance(self.schema.project(["Seed", "P", "V"]))
        inst.add_class_member("P", o)
        inst.add_relation_member("Seed", OTuple(A01="k", A02=o))
        return inst, o

    def test_assignment_happens_once(self):
        x, p = Var("x", D), Var("p", classref("P"))
        rule = Rule(
            Equality(p.hat(), TupleTerm(val=x)),
            [atom(self.schema, "Seed", x, p)],
        )
        inst, o = self.input_with_oid()
        out = evaluate(self.program([rule]), inst)
        assert out.value_of(o) == OTuple(val="k")

    def test_defined_value_never_overwritten(self):
        x, p = Var("x", D), Var("p", classref("P"))
        rule = Rule(
            Equality(p.hat(), TupleTerm(val=Const("other"))),
            [atom(self.schema, "Seed", x, p)],
        )
        inst, o = self.input_with_oid()
        inst.assign(o, OTuple(val="original"))
        out = evaluate(self.program([rule]), inst)
        assert out.value_of(o) == OTuple(val="original")

    def test_conflicting_derivations_ignored(self):
        # (★): two distinct values derived in the same step → both dropped.
        p = Var("p", classref("P"))
        v = Var("v", D)
        rule = Rule(
            Equality(p.hat(), TupleTerm(val=v)),
            [atom(self.schema, "Seed", Var("x", D), p), atom(self.schema, "V", v)],
        )
        inst, o = self.input_with_oid()
        inst.add_relation_member("V", "v1")
        inst.add_relation_member("V", "v2")
        out = evaluate(self.program([rule]), inst)
        assert out.value_of(o) is None

    def test_sequential_conflict_first_wins(self):
        # If one value arrives a step before the other, the first sticks —
        # inflationary semantics never modifies a determined value.
        p = Var("p", classref("P"))
        stage1 = [
            Rule(
                Equality(p.hat(), TupleTerm(val=Const("first"))),
                [atom(self.schema, "Seed", Var("x", D), p)],
            )
        ]
        stage2 = [
            Rule(
                Equality(p.hat(), TupleTerm(val=Const("second"))),
                [atom(self.schema, "Seed", Var("x", D), p)],
            )
        ]
        program = typecheck_program(
            Program(
                self.schema,
                stages=[stage1, stage2],
                input_names=["Seed", "P", "V"],
                output_names=["P"],
            )
        )
        inst, o = self.input_with_oid()
        out = evaluate(program, inst)
        assert out.value_of(o) == OTuple(val="first")


class TestSetGrowth:
    def test_set_elements_accumulate(self):
        schema = Schema(
            relations={"S": D, "Seed": classref("Q")},
            classes={"Q": set_of(D)},
        )
        x, q = Var("x", D), Var("q", classref("Q"))
        program = typecheck_program(
            Program(
                schema,
                rules=[
                    Rule(
                        Membership(q.hat(), x),
                        [atom(schema, "Seed", q), atom(schema, "S", x)],
                    )
                ],
                input_names=["S", "Seed", "Q"],
                output_names=["Q"],
            )
        )
        o = Oid()
        inst = Instance(schema.project(["S", "Seed", "Q"]))
        inst.add_class_member("Q", o)
        inst.add_relation_member("Seed", o)
        for c in ("a", "b", "c"):
            inst.add_relation_member("S", c)
        out = evaluate(program, inst)
        assert out.value_of(o) == OSet(["a", "b", "c"])


class TestStages:
    def test_stage_boundaries_are_fixpoints(self, tc_schema):
        # Stage 1 copies E to T; stage 2 closes T. Both must run to their
        # own fixpoint in order.
        x, y, z = Var("x", D), Var("y", D), Var("z", D)
        program = typecheck_program(
            Program(
                tc_schema,
                stages=[
                    [Rule(atom(tc_schema, "T", x, y), [atom(tc_schema, "E", x, y)])],
                    [
                        Rule(
                            atom(tc_schema, "T", x, z),
                            [atom(tc_schema, "T", x, y), atom(tc_schema, "T", y, z)],
                        )
                    ],
                ],
                input_names=["E"],
                output_names=["T"],
            )
        )
        edges = path_graph(5)
        out = evaluate(program, edge_instance(tc_schema, edges))
        got = {(t["A01"], t["A02"]) for t in out.relations["T"]}
        assert got == transitive_closure(edges)

    def test_per_stage_step_counts(self, tc_program, tc_schema):
        result = evaluate_full(tc_program, edge_instance(tc_schema, path_graph(4)))
        assert len(result.stats.per_stage_steps) == 1

    def test_max_steps_guard(self, tc_program, tc_schema):
        with pytest.raises(NonTerminationError):
            evaluate(
                tc_program,
                edge_instance(tc_schema, path_graph(30)),
                limits=EvaluatorLimits(max_steps=2),
            )
