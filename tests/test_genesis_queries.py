"""E1 — queries over the Genesis instance of Example 1.1.

Beyond validating the fixture (test_instance.py), these tests run real IQL
programs against it: navigation through ν, set membership, union-typed
relations, and incomplete information.
"""

import pytest

from repro.iql import (
    Equality,
    Membership,
    NameTerm,
    Program,
    Rule,
    TupleTerm,
    Var,
    evaluate,
    typecheck_program,
)
from repro.typesys import D, classref, set_of, tuple_of, union
from repro.workloads import ANCESTOR, FIRST, FOUNDED, SECOND, genesis_instance


@pytest.fixture
def genesis():
    return genesis_instance()


def run_query(instance, extra_relations, rules, output):
    """Run rules over Genesis; the output projection must be a well-formed
    schema, so it includes every class the output relation's type mentions."""
    schema = instance.schema.with_names(relations=extra_relations)
    outputs = [output]
    pending = set()
    for name in extra_relations:
        pending |= extra_relations[name].class_names()
    while pending:  # transitive closure of class references
        cls = pending.pop()
        if cls not in outputs:
            outputs.append(cls)
            pending |= schema.classes[cls].class_names()
    program = typecheck_program(
        Program(
            schema,
            rules=rules,
            input_names=sorted(instance.schema.names),
            output_names=sorted(set(outputs)),
        )
    )
    return evaluate(program, instance)


class TestNavigation:
    def test_children_names(self, genesis):
        """Names of all children of anyone in the first generation."""
        instance, oids = genesis
        first = classref(FIRST)
        second = classref(SECOND)
        p = Var("p", first)
        c = Var("c", second)
        n, cn = Var("n", D), Var("cn", D)
        kids = Var("kids", set_of(second))
        spouse = Var("sp", first)
        occs = Var("occs", set_of(D))
        rules = [
            Rule(
                Membership(NameTerm("ChildName"), cn),
                [
                    Membership(NameTerm(FIRST), p),
                    Equality(p.hat(), TupleTerm(name=n, spouse=spouse, children=kids)),
                    Membership(kids, c),
                    Equality(c.hat(), TupleTerm(name=cn, occupations=occs)),
                ],
            )
        ]
        out = run_query(instance, {"ChildName": D}, rules, "ChildName")
        # 'other' has undefined ν, so only the named children appear.
        assert out.relations["ChildName"] == {"Cain", "Abel", "Seth"}

    def test_spouse_symmetry(self, genesis):
        """Pairs (x, spouse-of-x): in Genesis the relation is symmetric."""
        instance, oids = genesis
        first = classref(FIRST)
        p, q = Var("p", first), Var("q", first)
        n = Var("n", D)
        kids = Var("kids", set_of(classref(SECOND)))
        rules = [
            Rule(
                Membership(NameTerm("Couple"), TupleTerm(a=p, b=q)),
                [
                    Membership(NameTerm(FIRST), p),
                    Equality(p.hat(), TupleTerm(name=n, spouse=q, children=kids)),
                ],
            )
        ]
        out = run_query(
            instance,
            {"Couple": tuple_of(a=first, b=first)},
            rules,
            "Couple",
        )
        pairs = {(t["a"], t["b"]) for t in out.relations["Couple"]}
        assert (oids["adam"], oids["eve"]) in pairs
        assert (oids["eve"], oids["adam"]) in pairs

    def test_shepherds(self, genesis):
        """Who has Shepherd among their occupations?"""
        instance, oids = genesis
        second = classref(SECOND)
        c = Var("c", second)
        n = Var("n", D)
        occs = Var("occs", set_of(D))
        rules = [
            Rule(
                Membership(NameTerm("Shepherds"), n),
                [
                    Membership(NameTerm(SECOND), c),
                    Equality(c.hat(), TupleTerm(name=n, occupations=occs)),
                    Membership(occs, Var("o", D)),
                    Equality(Var("o", D), "Shepherd"),
                ],
            )
        ]
        out = run_query(instance, {"Shepherds": D}, rules, "Shepherds")
        assert out.relations["Shepherds"] == {"Abel"}


class TestUnionTypedRelation:
    def test_celebrity_descendants_by_branch(self, genesis):
        """Split ancestor-of-celebrity by its union branches: plain names
        versus [spouse: name] records (Example 3.4.3's coercion pattern)."""
        instance, oids = genesis
        second = classref(SECOND)
        a = Var("a", second)
        w = Var("w", union(D, tuple_of(spouse=D)))
        n = Var("n", D)
        rules = [
            Rule(
                Membership(NameTerm("PlainDesc"), n),
                [
                    Membership(NameTerm(ANCESTOR), TupleTerm(anc=a, desc=w)),
                    Equality(n, w),
                ],
            ),
            Rule(
                Membership(NameTerm("SpouseDesc"), n),
                [
                    Membership(NameTerm(ANCESTOR), TupleTerm(anc=a, desc=w)),
                    Equality(TupleTerm(spouse=n), w),
                ],
            ),
        ]
        schema = instance.schema.with_names(
            relations={"PlainDesc": D, "SpouseDesc": D}
        )
        program = typecheck_program(
            Program(
                schema,
                rules=rules,
                input_names=sorted(instance.schema.names),
                output_names=["PlainDesc", "SpouseDesc"],
            )
        )
        out = evaluate(program, instance)
        assert out.relations["PlainDesc"] == {"Noah"}
        assert out.relations["SpouseDesc"] == {"Ada"}


class TestIncompleteInformation:
    def test_founders_with_unknown_values(self, genesis):
        """founded-lineage contains 'other', whose ν is undefined — queries
        dereferencing it silently skip, queries on the extent still see it."""
        instance, oids = genesis
        second = classref(SECOND)
        f = Var("f", second)
        n = Var("n", D)
        occs = Var("occs", set_of(D))
        extent_rules = [
            Rule(
                Membership(NameTerm("Founders"), f),
                [Membership(NameTerm(FOUNDED), f)],
            )
        ]
        out = run_query(instance, {"Founders": second}, extent_rules, "Founders")
        assert oids["other"] in out.relations["Founders"]

        name_rules = [
            Rule(
                Membership(NameTerm("FounderNames"), n),
                [
                    Membership(NameTerm(FOUNDED), f),
                    Equality(f.hat(), TupleTerm(name=n, occupations=occs)),
                ],
            )
        ]
        out = run_query(instance, {"FounderNames": D}, name_rules, "FounderNames")
        assert out.relations["FounderNames"] == {"Cain", "Seth"}
