"""E2 — Example 1.2: the acyclic↔cyclic graph re-representation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iql import classify, evaluate, evaluate_full, typecheck_program
from repro.schema import Instance
from repro.transform import (
    class_to_graph_program,
    decode_graph_output,
    graph_instance,
    graph_to_class_program,
)
from repro.workloads import cycle_graph, path_graph, random_graph


class TestForward:
    def test_typechecks_and_classifies_rr(self):
        program = typecheck_program(graph_to_class_program())
        report = classify(program)
        assert report.is_iql_rr  # the paper's flagship "natural" program

    def test_cycle_is_represented_cyclically(self):
        program = graph_to_class_program()
        out = evaluate(program, graph_instance(cycle_graph(3)))
        out.validate()
        assert len(out.classes["P"]) == 3
        assert decode_graph_output(out) == cycle_graph(3)

    def test_every_node_gets_exactly_one_object(self):
        edges = {("a", "b"), ("b", "c"), ("a", "c")}
        out = evaluate(graph_to_class_program(), graph_instance(edges))
        assert len(out.classes["P"]) == 3

    def test_invention_is_two_oids_per_node(self):
        edges = path_graph(5)
        result = evaluate_full(graph_to_class_program(), graph_instance(edges))
        assert result.stats.oids_invented == 2 * 5  # one P + one P_aux per node

    def test_self_loop(self):
        out = evaluate(graph_to_class_program(), graph_instance({("a", "a")}))
        assert decode_graph_output(out) == frozenset({("a", "a")})

    def test_isolated_input_empty(self):
        out = evaluate(graph_to_class_program(), graph_instance(set()))
        assert len(out.classes["P"]) == 0


class TestRoundTrip:
    def run_round_trip(self, edges):
        forward = graph_to_class_program()
        out = evaluate(forward, graph_instance(edges))
        # Re-root the forward output's class P as the inverse program's Q.
        inverse = typecheck_program(class_to_graph_program())
        q_input = Instance(inverse.input_schema)
        for oid in out.classes["P"]:
            q_input.add_class_member("Q", oid)
        q_input.nu.update(out.nu)
        back = evaluate(inverse, q_input)
        return {(t["A01"], t["A02"]) for t in back.relations["R_out"]}

    def test_cycle(self):
        assert self.run_round_trip(cycle_graph(4)) == cycle_graph(4)

    def test_path(self):
        assert self.run_round_trip(path_graph(5)) == path_graph(5)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 100))
    def test_random_graphs(self, n, seed):
        edges = random_graph(n, average_degree=1.5, seed=seed)
        assert self.run_round_trip(edges) == edges
