"""Tests for the update-impact analysis and maintenance certificates.

Three layers:

* unit tests over hand-written programs — cone membership, the
  counting/DRed/recompute trichotomy, the IQL701–IQL704 diagnostics, the
  renderers (text/JSON/DOT, including the zero-rule edge cases), and the
  ``repro impact`` / ``repro analyze --stats`` CLI,
* the E11/E19 acceptance shapes — every derived symbol classified, and a
  certified replay equal to a fresh evaluation,
* a differential property test over the same 220-seed corpus as
  ``test_differential``: every *certified* certificate must replay a
  random single-fact insert to the same instance as full re-evaluation
  (exactly when invention-free, up to O-isomorphism otherwise), and
  every cone containing invention/★/deletion/choose must be classified
  non-maintainable (conservativeness).
"""

import dataclasses
import json
import random

import pytest

from repro.analysis import (
    COUNTING,
    DRED,
    NOOP,
    RECOMPUTE,
    build_certificate,
    build_certificates,
    check_certificate,
    classify_cone,
    graphs_to_dot,
    impact_cone,
    impact_pass,
    impact_to_dot,
    overall_strategy,
    program_cones,
    program_graphs,
    render_impact_text,
    replay_insert,
)
from repro.datalog import datalog_to_iql, transitive_closure_program
from repro.errors import TypeCheckError
from repro.iql import Evaluator, Program
from repro.iql.literals import Equality
from repro.parser import program_from_source
from repro.schema import Instance, Schema, are_o_isomorphic
from repro.typesys import D
from repro.values import OTuple, Oid
from repro.__main__ import main

from tests.test_differential import (
    CONSTS,
    make_schema,
    random_instance,
    random_scheduled_program,
)

E19_PROGRAM = """
schema {
  relation E: [A1: D, A2: D];
  relation T: [A1: D, A2: D];
  relation F: [A1: D, A2: D];
  relation Seed: [A1: P];
  class P: [];
}
var x, y, z: D
var p: P
input E, Seed, P
output T, F, P
rules {
  T(x, y) :- E(x, y).
  T(x, z) :- T(x, y), E(y, z).
  F(x, y) :- T(x, y), T(y, x).
  p^ = [] :- Seed(p).
}
"""


def source_program(text):
    return program_from_source(text)


# -- cone structure -----------------------------------------------------------------


class TestImpactCone:
    def test_forward_closure_and_flags(self):
        program = source_program(
            """
            schema {
              relation E: [A1: D, A2: D];
              relation T: [A1: D, A2: D];
              relation F: [A1: D, A2: D];
            }
            var x, y, z: D
            input E
            output F
            rules {
              T(x, y) :- E(x, y).
              T(x, z) :- T(x, y), E(y, z).
              F(x, y) :- T(x, y), T(y, x).
            }
            """
        )
        cone = impact_cone(program, "E")
        assert set(cone.derived) == {"T", "F"}
        assert cone.impacts["T"].recursive
        assert not cone.impacts["F"].recursive  # F's own SCC is acyclic
        assert not cone.impacts["T"].via_negation
        assert cone.hazards == ()
        assert classify_cone(cone) == {"T": DRED, "F": COUNTING}
        assert overall_strategy(cone) == DRED
        # The slice re-runs the T stratum before the F stratum.
        written = [ref.rules for ref in cone.slice]
        assert len(written) == 2
        assert any("T(" in label.replace(" ", "") or "T([" in label for label in written[0])

    def test_negation_propagates_downstream(self):
        program = source_program(
            """
            schema { relation S: D; relation Bad: D; relation Ok: D; relation Out: D; }
            var x: D
            input S, Bad
            output Out
            rules {
              Ok(x) :- S(x), not Bad(x).
              Out(x) :- Ok(x).
            }
            """
        )
        cone = impact_cone(program, "Bad")
        assert set(cone.derived) == {"Ok", "Out"}
        assert cone.impacts["Ok"].via_negation
        assert cone.impacts["Out"].via_negation  # inherited through Ok
        assert classify_cone(cone) == {"Ok": DRED, "Out": DRED}
        # S is read positively: both symbols still flip through negation
        # of Bad only, so the S cone is negation-free.
        s_cone = impact_cone(program, "S")
        assert not s_cone.impacts["Ok"].via_negation

    def test_empty_cone_for_unread_symbol(self):
        program = source_program(
            """
            schema { relation S: D; relation Extra: D; relation Out: D; }
            var x: D
            input S, Extra
            output Out
            rules { Out(x) :- S(x). }
            """
        )
        cone = impact_cone(program, "Extra")
        assert cone.derived == ()
        assert overall_strategy(cone) == NOOP

    def test_invention_is_a_hazard(self):
        program = source_program(
            """
            schema { relation S: D; relation Holds: [A1: D, A2: P]; class P: []; }
            var x: D
            var p: P
            input S
            output Holds, P
            rules { Holds(x, p) :- S(x). }
            """
        )
        cone = impact_cone(program, "S")
        tags = {h.tag for h in cone.hazards}
        assert "invention" in tags
        assert overall_strategy(cone) == RECOMPUTE

    def test_deletion_and_choose_are_hazards(self):
        deletion = source_program(
            """
            schema { relation S: D; relation Keep: D; }
            var x: D
            input S, Keep
            output Keep
            rules { delete Keep(x) :- Keep(x), not S(x). }
            """
        )
        cone = impact_cone(deletion, "S")
        assert "deletion" in {h.tag for h in cone.hazards}
        assert overall_strategy(cone) == RECOMPUTE

        choose = source_program(
            """
            schema { relation S: [A1: D, A2: D]; relation Pick: [A1: D, A2: D]; }
            var x, y: D
            input S
            output Pick
            rules { Pick(x, y) :- S(x, y), choose. }
            """
        )
        cone = impact_cone(choose, "S")
        assert "choose" in {h.tag for h in cone.hazards}
        assert overall_strategy(cone) == RECOMPUTE

    def test_derive_into_input_is_a_hazard(self):
        program = source_program(
            """
            schema { relation S: D; relation Acc: D; }
            var x: D
            input S, Acc
            output Acc
            rules { Acc(x) :- S(x). }
            """
        )
        cone = impact_cone(program, "S")
        assert "writes-input" in {h.tag for h in cone.hazards}
        assert overall_strategy(cone) == RECOMPUTE

    def test_stage_crossing_read_is_a_hazard(self):
        # The stage-1 slice rule reads Aux, which stage 2 still grows:
        # replaying the slice against the final state would over-derive.
        program = source_program(
            """
            schema { relation S: D; relation Aux: D; relation Out: D; relation More: D; }
            var x: D
            input S, More
            output Out
            rules {
              Out(x) :- S(x), Aux(x).
              ;
              Aux(x) :- More(x).
            }
            """
        )
        cone = impact_cone(program, "S")
        assert "stage-crossing-read" in {h.tag for h in cone.hazards}
        assert overall_strategy(cone) == RECOMPUTE

    def test_class_update_seeds_extent_and_plane(self):
        program = source_program(E19_PROGRAM)
        cone = impact_cone(program, "P")
        assert set(cone.seeds) == {"P", "^P"}
        assert "weak-assignment" in {h.tag for h in cone.hazards}


# -- diagnostics (IQL701-IQL704) -----------------------------------------------------


class TestImpactDiagnostics:
    def codes(self, program):
        return [d.code for d in impact_pass(program)]

    def test_iql704_on_bounded_cone(self):
        program = datalog_to_iql(transitive_closure_program())
        diags = impact_pass(program)
        assert [d.code for d in diags] == ["IQL704"]
        assert "stage 1" in diags[0].message

    def test_iql703_on_static_symbol(self):
        program = source_program(
            """
            schema { relation S: D; relation Extra: D; relation Out: D; }
            var x: D
            input S, Extra
            output Out
            rules { Out(x) :- S(x). }
            """
        )
        diags = impact_pass(program)
        by_code = {d.code for d in diags}
        assert "IQL703" in by_code  # Extra is static
        assert "IQL704" in by_code  # S has a bounded cone

    def test_iql701_on_invention(self):
        with open("examples/divergent_invention.iql", encoding="utf-8") as handle:
            program = source_program(handle.read())
        diags = impact_pass(program)
        assert [d.code for d in diags] == ["IQL701"]
        assert diags[0].span is not None

    def test_iql702_on_delete_through_negation(self):
        program = source_program(
            """
            schema { relation S: D; relation Bad: D; relation Out: D; }
            var x: D
            input S, Bad
            output Out
            rules { Out(x) :- S(x), not Bad(x). }
            """
        )
        diags = impact_pass(program)
        codes = [d.code for d in diags]
        # Bad's cone crosses negation: the delete class needs DRed.
        assert "IQL702" in codes
        assert "IQL704" in codes
        iql702 = next(d for d in diags if d.code == "IQL702")
        assert "Bad" in iql702.message

    def test_iql701_suppresses_iql704(self):
        program = source_program(
            """
            schema { relation S: D; relation Holds: [A1: D, A2: P]; class P: []; }
            var x: D
            var p: P
            input S
            output Holds, P
            rules { Holds(x, p) :- S(x). }
            """
        )
        codes = self.codes(program)
        assert codes == ["IQL701"]


# -- certificates -------------------------------------------------------------------


class TestCertificates:
    def test_certificate_json_shape(self):
        program = datalog_to_iql(transitive_closure_program())
        certs = build_certificates(program)
        assert [(c.base, c.op) for c in certs] == [("E", "insert"), ("E", "delete")]
        doc = certs[0].to_json()
        json.dumps(doc)  # serializable
        assert doc["strategy"] == DRED
        assert doc["certified"] is True
        assert doc["classification"] == {"T": DRED}
        assert doc["slice"], "certified certificate must carry its slice"
        assert doc["delta_rules"], "slice rules must carry delta summaries"
        delta_positions = [r["delta_positions"] for r in doc["delta_rules"]]
        assert all(p is not None for p in delta_positions)

    def test_check_certificate_accepts_sound_and_flags_tampered(self):
        program = source_program(
            """
            schema { relation S: D; relation Holds: [A1: D, A2: P]; class P: []; }
            var x: D
            var p: P
            input S
            output Holds, P
            rules { Holds(x, p) :- S(x). }
            """
        )
        (cert,) = build_certificates(program, ops=("insert",))
        assert cert.strategy == RECOMPUTE
        assert check_certificate(program, cert) == []
        # Tampering the strategy to "counting" must be caught: the cone
        # carries an invention hazard.
        forged = dataclasses.replace(cert, strategy=COUNTING)
        violations = check_certificate(program, forged)
        assert any("hazard" in v for v in violations)
        assert any("invention" in v for v in violations)

    def test_replay_rejects_uncertified_and_wrong_op(self):
        program = source_program(
            """
            schema { relation S: D; relation Holds: [A1: D, A2: P]; class P: []; }
            var x: D
            var p: P
            input S
            output Holds, P
            rules { Holds(x, p) :- S(x). }
            """
        )
        cone = impact_cone(program, "S")
        insert_cert = build_certificate(program, cone, "insert")
        delete_cert = build_certificate(program, cone, "delete")
        instance = Instance(program.input_schema, relations={"S": ["a"]})
        full = Evaluator(program).run(instance).full
        with pytest.raises(ValueError, match="not certified"):
            replay_insert(program, full, insert_cert, "b")
        tc = datalog_to_iql(transitive_closure_program())
        tc_cone = impact_cone(tc, "E")
        tc_delete = build_certificate(tc, tc_cone, "delete")
        tc_full = Evaluator(tc).run(
            Instance(tc.input_schema, relations={"E": [OTuple(A01="a", A02="b")]})
        ).full
        with pytest.raises(ValueError, match="delete"):
            replay_insert(tc, tc_full, tc_delete, OTuple(A01="b", A02="c"))

    def test_noop_replay_only_adds_the_fact(self):
        program = source_program(
            """
            schema { relation S: D; relation Extra: D; relation Out: D; }
            var x: D
            input S, Extra
            output Out
            rules { Out(x) :- S(x). }
            """
        )
        cone = impact_cone(program, "Extra")
        cert = build_certificate(program, cone, "insert")
        assert cert.strategy == NOOP
        instance = Instance(program.input_schema, relations={"S": ["a"], "Extra": []})
        full = Evaluator(program).run(instance).full
        maintained = replay_insert(program, full, cert, "z")
        assert maintained.relations["Extra"] == {"z"}
        assert maintained.relations["Out"] == {"a"}


# -- the E11 / E19 acceptance shapes -------------------------------------------------


class TestAcceptanceShapes:
    def test_e11_every_derived_symbol_classified(self):
        program = datalog_to_iql(transitive_closure_program())
        (cone,) = program_cones(program)
        strategies = classify_cone(cone)
        assert set(strategies) == set(cone.derived) == {"T"}
        assert strategies["T"] == DRED

    def test_e11_replay_matches_full_evaluation(self):
        program = datalog_to_iql(transitive_closure_program())
        edges = [OTuple(A01=f"n{i}", A02=f"n{i+1}") for i in range(6)]
        instance = Instance(program.input_schema, relations={"E": edges})
        full = Evaluator(program).run(instance).full
        cert = build_certificate(program, impact_cone(program, "E"), "insert")
        assert check_certificate(program, cert) == []
        new_edge = OTuple(A01="n6", A02="n0")  # closes the cycle
        maintained = replay_insert(program, full, cert, new_edge)
        fresh_input = instance.copy()
        fresh_input.add_relation_member("E", new_edge)
        fresh = Evaluator(program).run(fresh_input).full
        assert maintained.ground_facts() == fresh.ground_facts()

    def test_e19_every_derived_symbol_classified(self):
        program = source_program(E19_PROGRAM)
        cones = {cone.base: cone for cone in program_cones(program)}
        assert set(cones) == {"E", "Seed", "P"}
        assert classify_cone(cones["E"]) == {"T": DRED, "F": COUNTING}
        assert classify_cone(cones["Seed"]) == {"^P": RECOMPUTE}
        assert classify_cone(cones["P"]) == {"^P": RECOMPUTE}
        # Every update class certificate carries a strategy.
        for cert in build_certificates(program):
            assert cert.strategy in (COUNTING, DRED, RECOMPUTE, NOOP)
            assert check_certificate(program, cert) == []

    def test_e19_replay_matches_full_evaluation(self):
        program = source_program(E19_PROGRAM)
        oids = [Oid() for _ in range(3)]
        instance = Instance(
            program.input_schema,
            relations={
                "E": [
                    OTuple(A1="a", A2="b"),
                    OTuple(A1="b", A2="c"),
                    OTuple(A1="c", A2="a"),
                ],
                "Seed": [OTuple(A1=o) for o in oids],
            },
            classes={"P": oids},
        )
        full = Evaluator(program).run(instance).full
        cert = build_certificate(program, impact_cone(program, "E"), "insert")
        assert cert.strategy == DRED
        assert check_certificate(program, cert) == []
        new_edge = OTuple(A1="c", A2="d")
        maintained = replay_insert(program, full, cert, new_edge)
        fresh_input = instance.copy()
        fresh_input.add_relation_member("E", new_edge)
        fresh = Evaluator(program).run(fresh_input).full
        assert maintained.ground_facts() == fresh.ground_facts()


# -- renderers and edge cases -------------------------------------------------------


def assert_valid_dot(text):
    """A structural validity check: one digraph, balanced braces, and
    every statement line inside it brace-, arrow- or attribute-shaped."""
    lines = text.splitlines()
    assert lines[0].startswith("digraph ") and lines[0].endswith("{")
    assert lines[-1] == "}"
    depth = 0
    for line in lines:
        depth += line.count("{") - line.count("}")
        assert depth >= 0, f"unbalanced braces at {line!r}"
        stripped = line.strip()
        if not stripped or stripped in ("{", "}"):
            continue
        assert (
            stripped.endswith("{") or stripped.endswith(";") or stripped == "}"
        ), f"unterminated DOT statement: {line!r}"
    assert depth == 0, "unbalanced braces"


class TestRenderers:
    def test_zero_rule_program_is_constructible(self):
        schema = Schema(relations={"R": D})
        program = Program(schema, rules=(), input_names=["R"], output_names=["R"])
        assert program.stages == ()
        # A present-but-empty stage is still a construction bug.
        with pytest.raises(TypeCheckError):
            Program(schema, stages=[[]])

    def test_zero_rule_program_dot_is_valid(self):
        schema = Schema(relations={"R": D})
        program = Program(schema, rules=(), input_names=["R"], output_names=["R"])
        graphs = program_graphs(program)
        assert graphs == []
        assert_valid_dot(graphs_to_dot(graphs))
        assert_valid_dot(impact_to_dot(program_cones(program), graphs))

    def test_zero_rule_program_evaluates_as_identity(self):
        schema = Schema(relations={"R": D})
        program = Program(schema, rules=(), input_names=["R"], output_names=["R"])
        out = Evaluator(program).run(
            Instance(program.input_schema, relations={"R": ["a"]})
        ).output
        assert out.relations["R"] == {"a"}

    def test_zero_rule_program_impact(self):
        schema = Schema(relations={"R": D})
        program = Program(schema, rules=(), input_names=["R"], output_names=["R"])
        diags = impact_pass(program)
        assert [d.code for d in diags] == ["IQL703"]

    def test_example_dot_outputs_are_valid(self, capsys):
        for name in ("transitive_closure", "divergent_invention", "graph_objects"):
            assert main(["analyze", f"examples/{name}.iql", "--format", "dot"]) == 0
            assert_valid_dot(capsys.readouterr().out)
            assert main(["impact", f"examples/{name}.iql", "--format", "dot"]) == 0
            assert_valid_dot(capsys.readouterr().out)

    def test_render_impact_text_mentions_every_base(self):
        program = source_program(E19_PROGRAM)
        text = render_impact_text(program_cones(program))
        for base in ("E", "Seed", "P"):
            assert f"update {base} " in text
        assert "counting" in text and "dred" in text and "recompute" in text


# -- the CLI ------------------------------------------------------------------------


class TestImpactCli:
    def test_text_output(self, capsys):
        assert main(["impact", "examples/transitive_closure.iql"]) == 0
        out = capsys.readouterr().out
        assert "update E" in out
        assert "IQL704" in out

    def test_json_output(self, capsys):
        assert main(["impact", "examples/transitive_closure.iql", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {c["op"] for c in doc["certificates"]} == {"insert", "delete"}
        assert doc["certificates"][0]["base"] == "E"
        assert [d["code"] for d in doc["diagnostics"]] == ["IQL704"]

    def test_symbol_and_op_filters(self, capsys):
        assert main(
            [
                "impact",
                "examples/transitive_closure.iql",
                "--symbol",
                "E",
                "--op",
                "insert",
                "--format",
                "json",
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [(c["base"], c["op"]) for c in doc["certificates"]] == [("E", "insert")]

    def test_unknown_symbol_is_an_error(self, capsys):
        assert main(["impact", "examples/transitive_closure.iql", "--symbol", "Nope"]) == 2
        assert "not an input symbol" in capsys.readouterr().err

    def test_analyze_stats_prints_timings(self, capsys):
        assert main(["analyze", "examples/transitive_closure.iql", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "analysis timings:" in err
        for name in ("lint", "effects", "depgraph", "impact"):
            assert name in err

    def test_analyze_json_carries_impact_section(self, capsys):
        assert main(
            ["analyze", "examples/transitive_closure.iql", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in doc["impact"]["diagnostics"]] == ["IQL704"]
        assert doc["impact"]["cones"][0]["base"] == "E"
        assert set(doc["timings_ms"]) == {"lint", "effects", "depgraph", "impact"}


# -- certificate soundness over the differential corpus ------------------------------
#
# The same 220-seed program/instance generator as test_differential
# (including the two-stage and IQL601-unstratified variants). For every
# updatable base symbol:
#
# * conservativeness — a cone whose slice contains an inventing,
#   deleting, choosing, or ★ rule must NOT be certified,
# * soundness — every certificate must pass check_certificate, and every
#   *certified* insert must replay to the same instance as a fresh full
#   evaluation (exact when the program is invention-free, up to
#   O-isomorphism otherwise).


def random_new_fact(base, rng):
    constants = CONSTS + ["d"]  # sometimes a constant the instance lacks
    if base == "E":
        return OTuple(A01=rng.choice(constants), A02=rng.choice(constants))
    return OTuple(A01=rng.choice(constants))


def run_certificate_soundness(seed):
    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    unstratified = seed % 4 == 1
    program = random_scheduled_program(schema, rng, allow_invention, unstratified)
    instance = random_instance(schema, rng)
    invention_free = all(rule.is_invention_free() for rule in program.rules)
    full = Evaluator(program).run(instance.copy()).full

    for cert in build_certificates(program):
        assert check_certificate(program, cert) == [], (
            f"seed {seed}: unsound certificate for ({cert.base}, {cert.op})"
        )
        slice_rules = [
            rule for stratum in cert.cone.slice_rules for rule in stratum
        ]
        hazardous = any(
            not rule.is_invention_free()
            or rule.delete
            or rule.has_choose()
            or isinstance(rule.head, Equality)
            for rule in slice_rules
        )
        if hazardous:
            assert not cert.certified or cert.strategy == NOOP, (
                f"seed {seed}: certified a cone with hazardous rules "
                f"({cert.base}, {cert.op}, {cert.strategy})"
            )
        if cert.op != "insert" or not cert.certified:
            continue
        fact = random_new_fact(cert.base, rng)
        maintained = replay_insert(program, full, cert, fact)
        fresh_input = instance.copy()
        fresh_input.add_relation_member(cert.base, fact)
        fresh = Evaluator(program).run(fresh_input.copy()).full
        if invention_free:
            assert maintained.ground_facts() == fresh.ground_facts(), (
                f"seed {seed}: replay diverges for ({cert.base}, insert, "
                f"{cert.strategy})"
            )
        else:
            assert are_o_isomorphic(maintained, fresh), (
                f"seed {seed}: replay not O-isomorphic for ({cert.base}, "
                f"insert, {cert.strategy})"
            )


@pytest.mark.parametrize("seed", range(220))
def test_certificate_soundness(seed):
    run_certificate_soundness(seed)
