"""Tests for the incremental hash indexes (repro.iql.indexes) and the
constants cache on Instance.

The invariant under test everywhere: an incrementally-maintained index
must equal a from-scratch rebuild from current instance state, after any
sequence of mutator calls — `InstanceIndexes.equals_rebuild` is the
oracle. The planner's use of the indexes is covered by the differential
tests; here we pin down the storage layer itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import database_to_instance, datalog_to_iql, transitive_closure_program
from repro.iql import Evaluator, Membership, Var, atom, columns
from repro.iql.indexes import InstanceIndexes
from repro.iql.valuation import match
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OTuple
from repro.workloads import path_graph


def make_schema():
    return Schema(
        relations={"R": columns(D, D)},
        classes={"P": tuple_of(a=D), "Q": set_of(D)},
    )


class TestRelationIndexes:
    def test_probe_equals_scan(self):
        instance = Instance(make_schema())
        for i in range(10):
            instance.add_relation_member("R", OTuple(A01=f"k{i % 3}", A02=f"v{i}"))
        bucket = instance.indexes.relation_probe("R", "A01", "k1")
        expected = {m for m in instance.relations["R"] if m["A01"] == "k1"}
        assert set(bucket) == expected

    def test_miss_is_empty(self):
        instance = Instance(make_schema())
        assert instance.indexes.relation_probe("R", "A01", "nope") == frozenset()

    def test_incremental_addition(self):
        instance = Instance(make_schema())
        instance.indexes.relation_index("R", "A01")  # build while empty
        member = OTuple(A01="a", A02="b")
        instance.add_relation_member("R", member)
        assert member in instance.indexes.relation_probe("R", "A01", "a")
        assert instance.indexes.equals_rebuild()


class TestDerefIndexes:
    def test_reverse_nu_probe(self):
        instance = Instance(make_schema())
        o1, o2, o3 = Oid(), Oid(), Oid()
        for o in (o1, o2, o3):
            instance.add_class_member("P", o)
        instance.assign(o1, OTuple(a="x"))
        instance.assign(o2, OTuple(a="x"))
        instance.assign(o3, OTuple(a="y"))
        assert instance.indexes.deref_probe("P", OTuple(a="x")) == {o1, o2}
        assert instance.indexes.deref_probe("P", OTuple(a="y")) == {o3}

    def test_reassignment_moves_buckets(self):
        instance = Instance(make_schema())
        o = Oid()
        instance.add_class_member("P", o)
        instance.assign(o, OTuple(a="x"))
        instance.indexes.deref_index("P")
        instance.assign(o, OTuple(a="y"))
        assert instance.indexes.deref_probe("P", OTuple(a="x")) == frozenset()
        assert instance.indexes.deref_probe("P", OTuple(a="y")) == {o}
        assert instance.indexes.equals_rebuild()

    def test_unbound_deref_match_uses_index(self):
        # x̂ matched against a value with x unbound must enumerate exactly
        # the oids whose ν-value equals it — via the reverse index.
        instance = Instance(make_schema())
        o1, o2 = Oid(), Oid()
        instance.add_class_member("P", o1)
        instance.add_class_member("P", o2)
        v = OTuple(a="x")
        instance.assign(o1, v)
        instance.assign(o2, OTuple(a="y"))
        x = Var("x", classref("P"))
        indexed = [theta[x] for theta in match(x.hat(), v, {}, instance, True)]
        scanned = [theta[x] for theta in match(x.hat(), v, {}, instance, False)]
        assert indexed == scanned == [o1]


class TestConstantsCache:
    def test_mutation_updates_cache(self):
        instance = Instance(make_schema())
        instance.add_relation_member("R", OTuple(A01="a", A02="b"))
        assert instance.constants() == {"a", "b"}
        # The cache is now warm; every mutator must keep it current.
        instance.add_relation_member("R", OTuple(A01="a", A02="c"))
        assert instance.constants() == {"a", "b", "c"}
        o = Oid()
        instance.add_class_member("P", o)
        instance.assign(o, OTuple(a="d"))
        assert "d" in instance.constants()
        q = Oid()
        instance.add_class_member("Q", q)
        instance.add_set_element(q, "e")
        assert "e" in instance.constants()
        assert instance.sorted_constants() == sorted({"a", "b", "c", "d", "e"})

    def test_sorted_constants_is_cached_until_new_constant(self):
        instance = Instance(make_schema())
        instance.add_relation_member("R", OTuple(A01="a", A02="b"))
        first = instance.sorted_constants()
        # Re-adding known constants must not invalidate the sorted list.
        instance.add_relation_member("R", OTuple(A01="b", A02="a"))
        assert instance.sorted_constants() is first
        instance.add_relation_member("R", OTuple(A01="z", A02="a"))
        assert instance.sorted_constants() == ["a", "b", "z"]

    def test_drop_indexes_resets_everything(self):
        instance = Instance(make_schema())
        instance.add_relation_member("R", OTuple(A01="a", A02="b"))
        instance.constants()
        instance.indexes.relation_index("R", "A01")
        # Simulate a deletion behind the mutators' backs (the IQL* path).
        instance.relations["R"].clear()
        instance.drop_indexes()
        assert instance.constants() == frozenset()
        assert instance.indexes.relation_probe("R", "A01", "a") == frozenset()


class TestEvaluatorStats:
    def test_stats_surface_index_activity(self):
        dprog = transitive_closure_program()
        program = datalog_to_iql(dprog)
        instance = database_to_instance(
            dprog, {"E": set(path_graph(8))}, names=dprog.edb
        )
        stats = Evaluator(program, seminaive=True, indexed=True).run(instance).stats
        assert stats.index_probes > 0
        assert stats.index_scans_avoided > 0
        assert stats.plan_cache_hits > 0
        assert stats.plan_cache_misses >= 1

    def test_unindexed_run_reports_no_probes(self):
        dprog = transitive_closure_program()
        program = datalog_to_iql(dprog)
        instance = database_to_instance(
            dprog, {"E": set(path_graph(8))}, names=dprog.edb
        )
        stats = Evaluator(program, seminaive=False, indexed=False).run(instance).stats
        assert stats.index_probes == 0
        assert stats.index_scans_avoided == 0


# -- the incremental-maintenance property test --------------------------------

CONSTS = st.sampled_from(["a", "b", "c", "d"])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("rel"), CONSTS, CONSTS),
        st.tuples(st.just("new_p"), CONSTS),
        st.tuples(st.just("new_q"), CONSTS),
        st.tuples(st.just("reassign"), st.integers(0, 7), CONSTS),
        st.tuples(st.just("grow_q"), st.integers(0, 7), CONSTS),
        # in-place retraction: the removal mutators must discard exactly
        # the affected bucket entries (never by dropping the index set)
        st.tuples(st.just("rel_del"), CONSTS, CONSTS),
        st.tuples(st.just("del_p"), st.integers(0, 7)),
        st.tuples(st.just("del_q"), st.integers(0, 7)),
        st.tuples(st.just("unassign"), st.integers(0, 7)),
        st.tuples(st.just("shrink_q"), st.integers(0, 7), CONSTS),
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(OPS)
def test_indexes_match_rebuild_after_arbitrary_mutations(ops):
    """After any mutator sequence, maintained indexes == from-scratch build."""
    instance = Instance(make_schema())
    # Build every index family up front so each op exercises maintenance.
    instance.indexes.relation_index("R", "A01")
    instance.indexes.relation_index("R", "A02")
    instance.indexes.deref_index("P")
    instance.indexes.deref_index("Q")
    indexes_before = instance.indexes
    p_oids, q_oids = [], []
    for op in ops:
        if op[0] == "rel":
            instance.add_relation_member("R", OTuple(A01=op[1], A02=op[2]))
        elif op[0] == "new_p":
            o = Oid()
            instance.add_class_member("P", o)
            instance.assign(o, OTuple(a=op[1]))
            p_oids.append(o)
        elif op[0] == "new_q":
            o = Oid()
            instance.add_class_member("Q", o)
            instance.add_set_element(o, op[1])
            q_oids.append(o)
        elif op[0] == "reassign" and p_oids:
            instance.assign(p_oids[op[1] % len(p_oids)], OTuple(a=op[2]))
        elif op[0] == "grow_q" and q_oids:
            instance.add_set_element(q_oids[op[1] % len(q_oids)], op[2])
        elif op[0] == "rel_del":
            instance.remove_relation_member("R", OTuple(A01=op[1], A02=op[2]))
        elif op[0] == "del_p" and p_oids:
            instance.remove_class_member("P", p_oids.pop(op[1] % len(p_oids)))
        elif op[0] == "del_q" and q_oids:
            instance.remove_class_member("Q", q_oids.pop(op[1] % len(q_oids)))
        elif op[0] == "unassign" and p_oids:
            instance.unassign(p_oids[op[1] % len(p_oids)])
        elif op[0] == "shrink_q" and q_oids:
            instance.remove_set_element(q_oids[op[1] % len(q_oids)], op[2])
    # Retraction is in place: the index object identity survived every op.
    assert instance.indexes is indexes_before
    assert instance.indexes.equals_rebuild()
    # The constants cache must agree with a cold recount too.
    cached = instance.constants()
    fresh = Instance(make_schema())
    fresh.relations = {k: set(v) for k, v in instance.relations.items()}
    fresh.nu = dict(instance.nu)
    assert cached == fresh.constants()


def test_equals_rebuild_detects_corruption():
    """The oracle itself must be able to fail (guard against vacuity)."""
    instance = Instance(make_schema())
    instance.add_relation_member("R", OTuple(A01="a", A02="b"))
    index = instance.indexes.relation_index("R", "A01")
    index["a"] = set()  # corrupt the bucket
    assert not instance.indexes.equals_rebuild()


def test_indexes_rebuilt_lazily_are_fresh_object():
    instance = Instance(make_schema())
    first = instance.indexes
    assert isinstance(first, InstanceIndexes)
    instance.drop_indexes()
    assert instance.indexes is not first


def test_membership_literal_solved_through_probe():
    """R([A01: x, A02: y]) with x bound probes, and agrees with the scan."""
    from repro.iql.valuation import solve_body

    schema = make_schema()
    instance = Instance(schema)
    for i in range(6):
        instance.add_relation_member("R", OTuple(A01=f"k{i % 2}", A02=f"v{i}"))
    x, y = Var("x", D), Var("y", D)
    body = [atom(schema, "R", x, y)]
    seed = {x: "k1"}
    with_idx = {theta[y] for theta in solve_body(body, instance, initial=seed)}
    without = {
        theta[y]
        for theta in solve_body(body, instance, initial=seed, use_indexes=False)
    }
    assert with_idx == without == {"v1", "v3", "v5"}


def test_deref_container_membership_agrees():
    """q̂(x) — a set-valued deref container — same answers both ways."""
    from repro.iql.valuation import solve_body

    schema = make_schema()
    instance = Instance(schema)
    q = Oid()
    instance.add_class_member("Q", q)
    instance.add_set_element(q, "m")
    instance.add_set_element(q, "n")
    qv = Var("q", classref("Q"))
    x = Var("x", D)
    body = [Membership(qv.hat(), x)]
    seed = {qv: q}
    with_idx = {theta[x] for theta in solve_body(body, instance, initial=seed)}
    without = {
        theta[x]
        for theta in solve_body(body, instance, initial=seed, use_indexes=False)
    }
    assert with_idx == without == {"m", "n"}
