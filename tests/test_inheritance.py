"""E12 — Section 6: type inheritance compiled to union types."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.inheritance import InheritanceSchema, IsaHierarchy, inherited_assignment
from repro.iql import (
    Equality,
    Membership,
    NameTerm,
    Program,
    Rule,
    TupleTerm,
    Var,
    evaluate,
    typecheck_program,
)
from repro.schema import Instance
from repro.typesys import D, classref, tuple_of, union
from repro.values import Oid, OTuple
from repro.workloads import university_instance, university_schema


class TestHierarchy:
    def test_reflexive_transitive_closure(self):
        h = IsaHierarchy(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert h.leq("a", "c") and h.leq("a", "a")
        assert not h.leq("c", "a")
        assert h.ancestors("a") == {"a", "b", "c"}
        assert h.descendants("c") == {"a", "b", "c"}

    def test_diamond(self):
        h = IsaHierarchy(
            ["ta", "student", "instructor", "person"],
            [("ta", "student"), ("ta", "instructor"), ("student", "person"), ("instructor", "person")],
        )
        assert h.ancestors("ta") == {"ta", "student", "instructor", "person"}
        assert h.descendants("person") == {"ta", "student", "instructor", "person"}

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError):
            IsaHierarchy(["a", "b"], [("a", "b"), ("b", "a")])

    def test_unknown_class_rejected(self):
        with pytest.raises(SchemaError):
            IsaHierarchy(["a"], [("a", "zzz")])

    def test_inherited_assignment(self):
        h = IsaHierarchy(["sub", "sup"], [("sub", "sup")])
        o1, o2 = Oid(), Oid()
        pi = {"sub": {o1}, "sup": {o2}}
        bar = inherited_assignment(pi, h)
        assert bar["sub"] == {o1}
        assert bar["sup"] == {o1, o2}


class TestEffectiveTypes:
    def test_university_expansion(self):
        schema = university_schema()
        assert schema.effective_type("person") == tuple_of(name=D)
        assert schema.effective_type("ta") == tuple_of(
            name=D, course_taken=D, course_taught=D
        )

    def test_incompatible_parents_collapse_to_empty(self):
        from repro.typesys import EMPTY

        schema = InheritanceSchema(
            classes={"a": tuple_of(), "b": D, "sub": tuple_of()},
            isa=[("sub", "a"), ("sub", "b")],
        )
        # A record cannot be a constant: t_sub = ⊥.
        assert schema.effective_type("sub") == EMPTY


class TestInstanceValidation:
    def test_university_instance(self):
        schema = university_schema()
        instance, groups = university_instance()
        schema.validate_instance(instance)

    def test_missing_inherited_attribute_rejected(self):
        schema = university_schema()
        instance, groups = university_instance()
        ta = groups["ta"][0]
        instance.nu[ta] = OTuple(name="broken")  # lacks course_taken/taught
        with pytest.raises(InstanceError):
            schema.validate_instance(instance)

    def test_extra_attribute_rejected(self):
        # Definition 6.2.2 deliberately uses the *unstarred* interpretation:
        # values carry exactly the attributes of the least class.
        schema = university_schema()
        instance, groups = university_instance()
        person = groups["person"][0]
        instance.nu[person] = OTuple(name="p", surprise="attr")
        with pytest.raises(InstanceError):
            schema.validate_instance(instance)

    def test_teaches_accepts_tas_through_inheritance(self):
        # The workload wires tas as teachers/learners; plain (non-inherited)
        # validation of the same instance would reject those rows.
        schema = university_schema()
        instance, groups = university_instance(tas=3, seed=1)
        schema.validate_instance(instance)
        assert not instance.is_valid()  # base-schema validation must fail


class TestCompilation:
    def test_compiled_schema_validates_instance(self):
        schema = university_schema()
        instance, _ = university_instance()
        plain = schema.compile_away_isa()
        lifted = Instance(plain)
        for name, members in instance.relations.items():
            lifted.relations[name] = set(members)
        for name, oids in instance.classes.items():
            for o in oids:
                lifted.add_class_member(name, o)
        lifted.nu.update(instance.nu)
        lifted.validate()  # plain validation succeeds on the compiled schema

    def test_substitution_in_relation_types(self):
        plain = university_schema().compile_away_isa()
        teaches = plain.relations["teaches"]
        assert teaches.component("T") == union(classref("instructor"), classref("ta"))
        assert teaches.component("S") == union(classref("student"), classref("ta"))

    def test_iql_runs_unchanged_on_compiled_schema(self):
        """A query over the compiled schema: names of everyone who teaches —
        instructors and tas alike, through the union type."""
        schema = university_schema()
        plain = schema.compile_away_isa()
        instance, groups = university_instance(instructors=2, tas=2, seed=3)

        full = plain.with_names(relations={"TeacherName": D})
        t_type = plain.relations["teaches"].component("T")
        s_type = plain.relations["teaches"].component("S")
        t, s = Var("t", t_type), Var("s", s_type)
        n = Var("n", D)
        ti, tta = Var("ti", classref("instructor")), Var("tta", classref("ta"))
        rules = [
            # Two rules, one per branch of the union — the coercion pattern
            # of Example 3.4.3 specialized to inheritance.
            Rule(
                Membership(NameTerm("TeacherName"), n),
                [
                    Membership(NameTerm("teaches"), TupleTerm(T=ti, S=s)),
                    Equality(
                        ti.hat(),
                        TupleTerm(name=n, course_taught=Var("c", D)),
                    ),
                ],
            ),
            Rule(
                Membership(NameTerm("TeacherName"), n),
                [
                    Membership(NameTerm("teaches"), TupleTerm(T=tta, S=s)),
                    Equality(
                        tta.hat(),
                        TupleTerm(
                            name=n, course_taught=Var("c", D), course_taken=Var("k", D)
                        ),
                    ),
                ],
            ),
        ]
        program = typecheck_program(
            Program(
                full,
                rules=rules,
                input_names=sorted(plain.names),
                output_names=["TeacherName"],
            )
        )
        lifted = Instance(plain)
        for name, members in instance.relations.items():
            lifted.relations[name] = set(members)
        for name, oids in instance.classes.items():
            for o in oids:
                lifted.add_class_member(name, o)
        lifted.nu.update(instance.nu)

        out = evaluate(program, lifted)
        teacher_oids = {row["T"] for row in instance.relations["teaches"]}
        expected = {instance.value_of(o)["name"] for o in teacher_oids}
        assert out.relations["TeacherName"] == expected
