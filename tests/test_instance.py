"""Tests for instances (Definition 2.3.2), including the Genesis fixture."""

import pytest

from repro.errors import InstanceError
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple
from repro.workloads import ANCESTOR, FIRST, FOUNDED, SECOND, genesis_instance


class TestGenesis:
    """Example 1.1 — the paper's own instance, checked in detail."""

    def setup_method(self):
        self.instance, self.oids = genesis_instance()

    def test_validates(self):
        self.instance.validate()

    def test_cyclicity_through_nu(self):
        adam, eve = self.oids["adam"], self.oids["eve"]
        assert self.instance.value_of(adam)["spouse"] is eve
        assert self.instance.value_of(eve)["spouse"] is adam

    def test_other_is_undefined(self):
        other = self.oids["other"]
        assert self.instance.value_of(other) is None
        assert not self.instance.has_value(other)

    def test_union_typed_relation(self):
        members = self.instance.relations[ANCESTOR]
        descs = {m["desc"] for m in members}
        assert "Noah" in descs
        assert OTuple(spouse="Ada") in descs

    def test_classes_disjoint(self):
        first = self.instance.classes[FIRST]
        second = self.instance.classes[SECOND]
        assert not first & second

    def test_constants_and_objects(self):
        constants = self.instance.constants()
        assert {"Adam", "Eve", "Noah", "Ada", "Shepherd"} <= constants
        assert self.oids["adam"] not in constants
        assert self.instance.objects() == set(self.oids.values())

    def test_ground_facts_shape(self):
        facts = self.instance.ground_facts()
        kinds = {tag for tag, _, _ in facts}
        assert kinds == {"rel", "cls", "val"}
        # Seth's empty occupations contribute a val fact with an empty set
        # inside a tuple — but an undefined oid contributes nothing.
        assert not any(tag == "val" and o is self.oids["other"] for tag, o, _ in facts)

    def test_fact_count_matches_ground_facts(self):
        assert self.instance.fact_count() == len(self.instance.ground_facts())


class TestMutation:
    def setup_method(self):
        self.schema = Schema(
            relations={"R": D},
            classes={"P": tuple_of(a=D), "Q": set_of(D), "P2": tuple_of(a=D)},
        )
        self.instance = Instance(self.schema)

    def test_relation_dedup(self):
        assert self.instance.add_relation_member("R", "x")
        assert not self.instance.add_relation_member("R", "x")

    def test_unknown_relation(self):
        with pytest.raises(InstanceError):
            self.instance.add_relation_member("Z", "x")

    def test_class_disjointness_enforced(self):
        o = Oid()
        self.instance.add_class_member("P", o)
        with pytest.raises(InstanceError):
            self.instance.add_class_member("P2", o)
        # re-adding to the same class is a no-op
        assert not self.instance.add_class_member("P", o)

    def test_assign_requires_membership(self):
        with pytest.raises(InstanceError):
            self.instance.assign(Oid(), OTuple(a="x"))

    def test_set_valued_default_and_growth(self):
        o = Oid()
        self.instance.add_class_member("Q", o)
        assert self.instance.value_of(o) == OSet()  # default for set-valued
        assert self.instance.add_set_element(o, "a")
        assert not self.instance.add_set_element(o, "a")
        assert self.instance.value_of(o) == OSet(["a"])

    def test_set_elements_only_on_set_valued(self):
        o = Oid()
        self.instance.add_class_member("P", o)
        with pytest.raises(InstanceError):
            self.instance.add_set_element(o, "a")

    def test_non_set_default_is_undefined(self):
        o = Oid()
        self.instance.add_class_member("P", o)
        assert self.instance.value_of(o) is None
        self.instance.assign(o, OTuple(a="v"))
        assert self.instance.value_of(o) == OTuple(a="v")


class TestValidation:
    def test_wrong_relation_member_type(self):
        s = Schema(relations={"R": D})
        i = Instance(s)
        i.relations["R"].add(OSet())  # bypass the typed adder
        with pytest.raises(InstanceError):
            i.validate()

    def test_wrong_nu_type(self):
        s = Schema(classes={"P": tuple_of(a=D)})
        o = Oid()
        i = Instance(s, classes={"P": [o]})
        i.nu[o] = "not a tuple"
        with pytest.raises(InstanceError):
            i.validate()

    def test_stray_oid_detected(self):
        s = Schema(relations={"R": classref("P")}, classes={"P": tuple_of()})
        i = Instance(s)
        i.relations["R"].add(Oid())  # an oid belonging to no class
        with pytest.raises(InstanceError):
            i.validate()

    def test_is_valid_boolean(self):
        s = Schema(relations={"R": D})
        assert Instance(s, relations={"R": ["a"]}).is_valid()


class TestStructuralOps:
    def setup_method(self):
        self.instance, self.oids = genesis_instance()

    def test_copy_is_independent(self):
        clone = self.instance.copy()
        clone.add_relation_member(FOUNDED, self.oids["abel"])
        assert self.oids["abel"] not in self.instance.relations[FOUNDED]
        assert clone != self.instance

    def test_copy_equal(self):
        assert self.instance.copy() == self.instance

    def test_project(self):
        target = self.instance.schema.project([SECOND, FOUNDED])
        projected = self.instance.project(target)
        projected.validate()
        assert set(projected.relations) == {FOUNDED}
        assert set(projected.classes) == {SECOND}
        # ν restricted to the projected class
        assert self.oids["adam"] not in projected.nu
        assert self.oids["cain"] in projected.nu

    def test_project_requires_projection_schema(self):
        with pytest.raises(InstanceError):
            self.instance.project(Schema(relations={"Other": D}))

    def test_with_schema_extends(self):
        bigger = self.instance.schema.with_names(relations={"Extra": D})
        lifted = self.instance.with_schema(bigger)
        lifted.validate()
        assert lifted.relations["Extra"] == set()
        assert lifted.project(self.instance.schema) == self.instance

    def test_equality_ignores_default_empty_sets(self):
        s = Schema(classes={"Q": set_of(D)})
        o = Oid()
        a = Instance(s, classes={"Q": [o]})
        b = Instance(s, classes={"Q": [o]})
        b.nu[o] = OSet()  # explicitly empty vs implicitly empty
        assert a == b

    def test_instances_unhashable(self):
        with pytest.raises(TypeError):
            hash(self.instance)
