"""The hash-consing layer (PR 3): interning, cached metadata, colour
refinement, and the differential guarantees around ``--no-intern``.

Three families of properties:

* **Interning** — structurally equal values are the *same* object while
  interning is on; values from different intern generations still compare
  equal (structural fallback); cached per-node metadata agrees with a
  plain recomputation.
* **Colouring** — the joint partition refinement of
  :func:`repro.schema.refine_colours` is invariant under random
  O-isomorphisms, and the new :func:`find_o_isomorphism` agrees with the
  retained pre-PR-3 search on random instance pairs.
* **Differential** — the evaluator with ``interned=False`` produces the
  same output (up to O-isomorphism for inventing programs) as the default,
  on the same random-program corpus the engine differential tests use.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iql import Evaluator
from repro.schema import (
    Instance,
    Schema,
    apply_o_isomorphism,
    are_o_isomorphic,
    find_o_isomorphism,
    find_o_isomorphism_reference,
    refine_colours,
)
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import (
    Oid,
    OSet,
    OTuple,
    constants_of,
    intern,
    interning,
    oids_of,
    reintern,
    sort_key,
    sorted_elements,
    substitute_oids,
    value_depth,
    value_size,
)

# -- strategies -----------------------------------------------------------------

constants = st.one_of(st.text(max_size=4), st.integers(-50, 50), st.booleans())


def ovalues():
    return st.recursive(
        constants,
        lambda children: st.one_of(
            st.lists(children, max_size=3).map(OSet),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), children, max_size=3
            ).map(OTuple),
        ),
        max_leaves=8,
    )


# -- interning ------------------------------------------------------------------


@given(ovalues())
def test_equal_values_are_identical_when_interned(v):
    with interning(True):
        rebuilt = _rebuild(v)
        if isinstance(v, (OTuple, OSet)):
            assert rebuilt is _rebuild(v)


def _rebuild(v):
    """Reconstruct ``v`` bottom-up through the public constructors."""
    if isinstance(v, OTuple):
        return OTuple({attr: _rebuild(x) for attr, x in v.items()})
    if isinstance(v, OSet):
        return OSet(_rebuild(x) for x in v)
    return v


@given(ovalues())
def test_cross_generation_equality(v):
    """A value built with interning off equals (but need not be) the
    interned build of the same content."""
    with interning(True):
        interned = _rebuild(v)
    with interning(False):
        plain = _rebuild(v)
    assert interned == plain
    assert plain == interned
    assert hash(interned) == hash(plain)


@given(ovalues())
def test_interning_toggle_does_not_change_equality(v):
    with interning(False):
        a = _rebuild(v)
        b = _rebuild(v)
    assert a == b
    assert hash(a) == hash(b)


def test_intern_counters_move():
    h0, m0, _ = intern.counters()
    with interning(True):
        # Hold both builds: the table is weak, so an unreferenced value is
        # evicted the moment it is collected.
        first = OTuple(x=OSet([1, 2, "fresh-counter-probe"]))
        second = OTuple(x=OSet([1, 2, "fresh-counter-probe"]))
    h1, m1, _ = intern.counters()
    assert m1 > m0  # at least the first build missed
    assert h1 > h0  # and the rebuild hit
    assert second is first


def test_weak_table_evicts_dead_values():
    with interning(True):
        tuples0, _ = intern.table_sizes()
        held = OTuple(k=OSet(["evict-probe", 7]))
        assert intern.table_sizes()[0] > tuples0
        del held
    assert intern.table_sizes()[0] <= tuples0 + 1  # entry gone with the value


# -- cached metadata ------------------------------------------------------------


def _naive_size(v):
    if isinstance(v, OTuple):
        return 1 + sum(_naive_size(x) for _, x in v.items())
    if isinstance(v, OSet):
        return 1 + sum(_naive_size(x) for x in v)
    return 1


def _naive_depth(v):
    if isinstance(v, OTuple):
        return 1 + max((_naive_depth(x) for _, x in v.items()), default=0)
    if isinstance(v, OSet):
        return 1 + max((_naive_depth(x) for x in v), default=0)
    return 0


def _naive_oids(v):
    if isinstance(v, Oid):
        return frozenset((v,))
    if isinstance(v, OTuple):
        return frozenset().union(*(_naive_oids(x) for _, x in v.items()), frozenset())
    if isinstance(v, OSet):
        return frozenset().union(*(_naive_oids(x) for x in v), frozenset())
    return frozenset()


def _naive_constants(v):
    if isinstance(v, Oid):
        return frozenset()
    if isinstance(v, OTuple):
        return frozenset().union(
            *(_naive_constants(x) for _, x in v.items()), frozenset()
        )
    if isinstance(v, OSet):
        return frozenset().union(*(_naive_constants(x) for x in v), frozenset())
    return frozenset((v,))


@given(ovalues())
def test_cached_metadata_matches_recomputation(v):
    assert value_size(v) == _naive_size(v)
    assert value_depth(v) == _naive_depth(v)
    assert oids_of(v) == _naive_oids(v)
    assert constants_of(v) == _naive_constants(v)
    # Caches are per-node: a second query returns the same answers.
    assert value_size(v) == _naive_size(v)
    assert oids_of(v) == _naive_oids(v)


def test_metadata_with_oids():
    a, b = Oid("a"), Oid("b")
    v = OTuple(x=OSet([a, OTuple(y=b, z="k")]), w=3)
    assert oids_of(v) == {a, b}
    assert constants_of(v) == {"k", 3}
    assert value_size(v) == _naive_size(v)
    assert value_depth(v) == 3


@given(ovalues())
def test_sorted_elements_cached_and_sorted(v):
    if isinstance(v, OSet):
        first = sorted_elements(v)
        assert first == tuple(sorted(v.elements, key=sort_key))
        assert sorted_elements(v) is first


def test_tuple_lookup_is_dict_backed_and_agrees():
    t = OTuple(b=2, a=1, c=OSet())
    assert t["a"] == 1 and t["b"] == 2
    assert t.get("missing") is None
    assert "c" in t and "d" not in t
    assert t.attributes == ("a", "b", "c")
    scan = {attr: value for attr, value in t.items()}
    assert all(t[attr] == value for attr, value in scan.items())


# -- substitution ---------------------------------------------------------------


def _naive_substitute(v, mapping):
    if isinstance(v, Oid):
        return mapping.get(v, v)
    if isinstance(v, OTuple):
        return OTuple({attr: _naive_substitute(x, mapping) for attr, x in v.items()})
    if isinstance(v, OSet):
        return OSet(_naive_substitute(x, mapping) for x in v)
    return v


@settings(max_examples=50)
@given(ovalues(), st.randoms(use_true_random=False))
def test_substitute_oids_matches_naive(v, rng):
    oids = [Oid(f"s{i}") for i in range(4)]
    v = OTuple(p=v, q=OSet(rng.sample(oids, rng.randint(0, 3))))
    mapping = {o: Oid(f"t{i}") for i, o in enumerate(rng.sample(oids, 2))}
    assert substitute_oids(v, mapping) == _naive_substitute(v, mapping)
    assert substitute_oids(v, {}) is v


# -- colouring ------------------------------------------------------------------


def _random_instance(rng):
    schema = Schema(
        classes={"Node": tuple_of(tag=D, out=set_of(classref("Node")))},
        relations={"R": set_of(classref("Node"))},
    )
    n = rng.randint(2, 8)
    oids = [Oid(f"n{i}") for i in range(n)]
    instance = Instance(schema, classes={"Node": oids})
    for o in oids:
        succ = rng.sample(oids, rng.randint(0, min(2, n)))
        instance.assign(o, OTuple(tag=f"t{rng.randint(0, 2)}", out=OSet(succ)))
    for _ in range(rng.randint(0, 2)):
        instance.add_relation_member("R", OSet(rng.sample(oids, rng.randint(1, n))))
    return instance


def _random_renaming(instance):
    return {o: Oid() for o in sorted(instance.objects())}


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_colouring_invariant_under_o_isomorphism(seed):
    rng = random.Random(seed)
    instance = _random_instance(rng)
    mapping = _random_renaming(instance)
    image = apply_o_isomorphism(instance, mapping)
    colour_a, colour_b = refine_colours([instance, image])
    # Corresponding oids land in the same (shared-space) colour class.
    assert {o: colour_b[mapping[o]] for o in colour_a} == colour_a


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_find_o_isomorphism_agrees_with_reference(seed):
    rng = random.Random(seed)
    source = _random_instance(rng)
    if rng.random() < 0.5:
        target = apply_o_isomorphism(source, _random_renaming(source))
    else:
        target = _random_instance(rng)  # usually not isomorphic
    fast = find_o_isomorphism(source, target)
    slow = find_o_isomorphism_reference(source, target)
    assert (fast is None) == (slow is None), f"seed {seed}: searches disagree"
    if fast is not None:
        assert apply_o_isomorphism(source, fast) == target


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_found_isomorphism_is_valid(seed):
    rng = random.Random(seed)
    source = _random_instance(rng)
    target = apply_o_isomorphism(source, _random_renaming(source))
    mapping = find_o_isomorphism(source, target)
    assert mapping is not None
    assert apply_o_isomorphism(source, mapping) == target
    assert are_o_isomorphic(target, source)


# -- interned vs --no-intern differential ---------------------------------------


def _run_intern_differential(seed):
    from tests.test_differential import make_schema, random_instance, random_program

    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    program = random_program(schema, rng, allow_invention)
    instance = random_instance(schema, rng)
    interned = Evaluator(program, interned=True).run(instance.copy()).output
    plain = Evaluator(program, interned=False).run(instance.copy()).output
    if all(rule.is_invention_free() for rule in program.rules):
        assert interned == plain, f"seed {seed}: exact disagreement"
    else:
        assert are_o_isomorphic(interned, plain), f"seed {seed}: not O-isomorphic"


@pytest.mark.parametrize("seed", range(0, 120))
def test_interned_engine_matches_no_intern(seed):
    _run_intern_differential(seed)


# -- pickling: the process-boundary identity channel ----------------------------
#
# The shared-nothing executor (repro.iql.parexec, backend="process") rides
# on three properties of the value types' pickling:
#
# 1. round trips preserve structure: a == pickle.loads(pickle.dumps(a)),
# 2. unpickling rebuilds THROUGH interned construction, so a canonical
#    node comes back as itself: a is reintern(loads(dumps(a))),
# 3. oid identity survives via the serial registry: the coordinator
#    recognizes its own oids in a worker's reply.
#
# Cross-generation values (built under interning(False)) round-trip to
# structural twins whose re-interning lands on the same canonical node.

_PICKLE_OIDS = tuple(Oid(f"pk{i}") for i in range(4))


def ovalues_with_oids():
    return st.recursive(
        st.one_of(constants, st.sampled_from(_PICKLE_OIDS)),
        lambda children: st.one_of(
            st.lists(children, max_size=3).map(OSet),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), children, max_size=3
            ).map(OTuple),
        ),
        max_leaves=8,
    )


@settings(deadline=None)
@given(ovalues_with_oids())
def test_pickle_round_trip_reinterns_to_the_identical_node(value):
    import pickle

    back = pickle.loads(pickle.dumps(value))
    assert back == value
    if isinstance(value, (OTuple, OSet)):
        # Unpickling reconstructs through __new__, so the canonical node
        # comes back as itself — reintern is then the identity on it.
        assert back is value
        assert reintern(back) is value
    elif isinstance(value, Oid):
        assert back is value


@settings(deadline=None)
@given(ovalues_with_oids())
def test_cross_generation_pickles_reintern_to_one_node(value):
    import pickle

    blob = pickle.dumps(value)
    with interning(False):
        # A twin born outside the store: equal, but (for containers
        # carrying structure) not the canonical node.
        twin = pickle.loads(blob)
    assert twin == value
    assert reintern(twin) is reintern(value)
    if isinstance(value, (OTuple, OSet)):
        assert reintern(value) is value


def test_oid_identity_survives_a_subprocess_round_trip():
    # A worker pickles facts back to the coordinator: the coordinator's
    # own oids must come back as the same objects (the registry path),
    # and foreign oids must re-materialize with their serial respected.
    import pickle

    oid = Oid("w")
    t = OTuple(a=oid, b=1)
    blob = pickle.dumps((oid, t))
    back_oid, back_t = pickle.loads(blob)
    assert back_oid is oid
    assert back_t is t
    assert back_t["a"] is oid


def test_wire_batch_round_trip_preserves_identity_and_sharing():
    from repro import io

    oid = Oid("s")
    shared = OTuple(x=oid, y=2)
    fact_a = OTuple(p=shared, q=3)
    fact_b = OTuple(p=shared, q=4)
    wire = io.batch_to_wire({"R": [fact_a, fact_b], "C": [oid]})
    nodes, payload = wire
    # Interned sharing is preserved on the wire: `shared` appears once.
    assert sum(1 for node in nodes if node[0] == "t") == 3
    decoded = io.batch_from_wire(wire)
    assert decoded["R"][0] is fact_a
    assert decoded["R"][1] is fact_b
    assert decoded["C"][0] is oid
