"""Property tests for evaluator invariants — Theorem 4.1.3's consequences,
checked on randomized workloads.

For arbitrary inputs through the paper's programs:

* outputs are legal instances (well-typedness, condition 1),
* constants(J) ⊆ constants(I) (the genericity corollary),
* classes stay pairwise disjoint (the standing assumption),
* evaluation within a stage is inflationary (ground facts only grow),
* two runs with different invention orders agree up to O-isomorphism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iql import Evaluator, PrefixedOidFactory, evaluate, evaluate_full
from repro.schema import are_o_isomorphic
from repro.transform import (
    decode_graph_output,
    graph_instance,
    graph_to_class_program,
    powerset_input,
    powerset_unrestricted_program,
)
from repro.workloads import random_graph


graphs = st.builds(
    random_graph,
    st.integers(2, 7),
    average_degree=st.floats(0.5, 2.0),
    seed=st.integers(0, 10_000),
)


@settings(max_examples=10, deadline=None)
@given(graphs)
def test_outputs_are_legal_instances(edges):
    out = evaluate(graph_to_class_program(), graph_instance(edges))
    out.validate()


@settings(max_examples=10, deadline=None)
@given(graphs)
def test_no_new_constants(edges):
    instance = graph_instance(edges)
    out = evaluate(graph_to_class_program(), instance)
    assert out.constants() <= instance.constants()


@settings(max_examples=10, deadline=None)
@given(graphs)
def test_classes_disjoint_in_full_instance(edges):
    result = evaluate_full(graph_to_class_program(), graph_instance(edges))
    seen = set()
    for oids in result.full.classes.values():
        assert not (seen & oids)
        seen |= oids


@settings(max_examples=10, deadline=None)
@given(graphs)
def test_output_preserves_the_graph(edges):
    out = evaluate(graph_to_class_program(), graph_instance(edges))
    assert decode_graph_output(out) == edges


@settings(max_examples=6, deadline=None)
@given(graphs)
def test_determinate_up_to_renaming(edges):
    a = Evaluator(
        graph_to_class_program(), oid_factory=PrefixedOidFactory("L")
    ).run(graph_instance(edges)).output
    b = Evaluator(
        graph_to_class_program(), oid_factory=PrefixedOidFactory("R")
    ).run(graph_instance(edges)).output
    assert are_o_isomorphic(a, b)


@settings(max_examples=8, deadline=None)
@given(st.sets(st.sampled_from(["a", "b", "c", "d"]), max_size=4))
def test_powerset_invariants(elements):
    instance = powerset_input(sorted(elements))
    out = evaluate(powerset_unrestricted_program(), instance)
    out.validate()
    assert len(out.relations["R1"]) == 2 ** len(elements)
    assert out.constants() <= instance.constants()


@settings(max_examples=6, deadline=None)
@given(graphs)
def test_inflationary_growth_within_run(edges):
    # fact_count after each stage is non-decreasing: re-run with a traced
    # evaluator and reconstruct stage boundaries from per_stage_steps.
    result = evaluate_full(graph_to_class_program(), graph_instance(edges))
    # the inflationary claim at whole-run granularity:
    assert result.full.fact_count() >= graph_instance(edges).fact_count()
    assert result.stats.facts_deleted == 0
