"""Tests for JSON serialization (repro.io) and the CLI (python -m repro)."""

import json

import pytest

from repro import io
from repro.errors import OValueError, SchemaError
from repro.schema import Instance, Schema, are_o_isomorphic
from repro.typesys import D, classref, tuple_of, union
from repro.values import Oid, OSet, OTuple
from repro.workloads import genesis_instance


class TestValueCodec:
    def test_scalars_pass_through(self):
        assert io.value_to_json("x", {}) == "x"
        assert io.value_from_json(42, {}) == 42

    def test_composites(self):
        o = Oid("obj")
        names = {o: "obj"}
        v = OTuple(a=OSet(["x", o]), b=1)
        doc = io.value_to_json(v, names)
        # canonical set order: constants before oids (sort_key kinds)
        assert doc == {"tuple": {"a": {"set": ["x", {"oid": "obj"}]}, "b": 1}}
        back = io.value_from_json(doc, {"obj": o})
        assert back == v

    def test_undeclared_oid_rejected(self):
        with pytest.raises(OValueError):
            io.value_from_json({"oid": "ghost"}, {})

    def test_junk_rejected(self):
        with pytest.raises(OValueError):
            io.value_from_json({"weird": 1}, {})


class TestInstanceRoundTrip:
    def test_relational(self):
        schema = Schema(relations={"R": tuple_of(A1=D, A2=D)})
        instance = Instance(
            schema, relations={"R": [OTuple(A1="a", A2="b")]}
        )
        loaded = io.loads(io.dumps(instance))
        assert loaded == instance

    def test_genesis_round_trip_up_to_renaming(self):
        instance, _ = genesis_instance()
        loaded = io.loads(io.dumps(instance))
        loaded.validate()
        assert are_o_isomorphic(instance, loaded)

    def test_cyclic_values(self):
        schema = Schema(classes={"P": tuple_of(peer=classref("P"))})
        a, b = Oid("a"), Oid("b")
        instance = Instance(
            schema,
            classes={"P": [a, b]},
            nu={a: OTuple(peer=b), b: OTuple(peer=a)},
        )
        loaded = io.loads(io.dumps(instance))
        assert are_o_isomorphic(instance, loaded)

    def test_union_types_render(self):
        schema = Schema(relations={"R": union(D, tuple_of(s=D))})
        instance = Instance(schema, relations={"R": ["x", OTuple(s="y")]})
        loaded = io.loads(io.dumps(instance))
        assert loaded == instance

    def test_duplicate_display_names_disambiguated(self):
        schema = Schema(classes={"P": tuple_of()})
        instance = Instance(schema, classes={"P": [Oid("twin"), Oid("twin")]})
        doc = json.loads(io.dumps(instance))
        assert len(set(doc["classes"]["P"])) == 2

    def test_missing_schema_rejected(self):
        with pytest.raises(SchemaError):
            io.loads("{}")

    def test_nu_for_undeclared_oid_rejected(self):
        doc = {
            "schema": {"relations": {}, "classes": {"P": "[]"}},
            "classes": {"P": []},
            "nu": {"ghost": {"tuple": {}}},
            "relations": {},
        }
        with pytest.raises(SchemaError):
            io.instance_from_dict(doc)


class TestCli:
    PROGRAM = """
    schema {
      relation E: [A1: D, A2: D];
      relation T: [A1: D, A2: D];
    }
    input E
    output T
    rules {
      T(x, y) :- E(x, y).
      T(x, z) :- T(x, y), E(y, z).
    }
    """

    @pytest.fixture
    def files(self, tmp_path):
        program = tmp_path / "tc.iql"
        program.write_text(self.PROGRAM)
        schema = Schema(relations={"E": tuple_of(A1=D, A2=D)})
        instance = Instance(
            schema,
            relations={"E": [OTuple(A1="a", A2="b"), OTuple(A1="b", A2="c")]},
        )
        data = tmp_path / "in.json"
        data.write_text(io.dumps(instance))
        return program, data, tmp_path

    def test_check(self, files, capsys):
        from repro.__main__ import main

        program, _, _ = files
        assert main(["check", str(program)]) == 0
        out = capsys.readouterr().out
        assert "IQLrr" in out

    def test_run(self, files, capsys):
        from repro.__main__ import main

        program, data, tmp = files
        out_path = tmp / "out.json"
        assert main(["run", str(program), "--input", str(data), "--output", str(out_path)]) == 0
        result = io.load(str(out_path))
        assert len(result.relations["T"]) == 3

    def test_run_rejects_ill_typed_program(self, files, capsys, tmp_path):
        from repro.__main__ import main

        bad = tmp_path / "bad.iql"
        bad.write_text(
            """
            schema { relation S: D; relation Q: {D}; }
            var x: {D}
            input S
            output S
            rules { S(x) :- Q(x). }
            """
        )
        _, data, _ = files
        assert main(["run", str(bad), "--input", str(data)]) == 1

    def test_validate(self, files, capsys):
        from repro.__main__ import main

        _, data, _ = files
        assert main(["validate", str(data)]) == 0
        assert "legal instance" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        from repro.__main__ import main

        assert main(["check", "/nonexistent.iql"]) == 1
