"""Tests for O-/DO-isomorphisms (Section 4.1)."""


from repro.schema import (
    Instance,
    Schema,
    apply_do_isomorphism,
    apply_o_isomorphism,
    are_o_isomorphic,
    automorphisms,
    find_o_isomorphism,
    orbit_partition,
)
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple
from repro.workloads import genesis_instance


def ring_instance(schema, size, names=None):
    """A ring of persons, each the friend of the next."""
    oids = [Oid(names[i] if names else f"p{i}") for i in range(size)]
    inst = Instance(schema, classes={"Person": oids})
    for i, o in enumerate(oids):
        inst.assign(
            o, OTuple(name=f"x{i % 2}", friends=OSet([oids[(i + 1) % size]]))
        )
    return inst, oids


class TestApply:
    def test_apply_o_isomorphism(self, person_schema):
        inst, oids = ring_instance(person_schema, 2)
        fresh = [Oid(), Oid()]
        image = apply_o_isomorphism(inst, dict(zip(oids, fresh)))
        image.validate()
        assert image.objects() == set(fresh)
        assert image.constants() == inst.constants()

    def test_apply_do_isomorphism_renames_constants(self, person_schema):
        inst, oids = ring_instance(person_schema, 2)
        image = apply_do_isomorphism(
            inst, {o: Oid() for o in oids}, {"x0": "y0", "x1": "y1"}
        )
        assert image.constants() == {"y0", "y1"}

    def test_partial_mapping_fixes_rest(self, person_schema):
        inst, oids = ring_instance(person_schema, 2)
        image = apply_o_isomorphism(inst, {})
        assert image == inst


class TestFind:
    def test_isomorphic_rings(self, person_schema):
        a, _ = ring_instance(person_schema, 4)
        b, _ = ring_instance(person_schema, 4)
        mapping = find_o_isomorphism(a, b)
        assert mapping is not None
        assert apply_o_isomorphism(a, mapping) == b

    def test_different_sizes_fail_fast(self, person_schema):
        a, _ = ring_instance(person_schema, 4)
        b, _ = ring_instance(person_schema, 6)
        assert find_o_isomorphism(a, b) is None

    def test_same_size_different_structure(self, person_schema):
        a, _ = ring_instance(person_schema, 4)
        # b: two 2-rings instead of one 4-ring
        o = [Oid() for _ in range(4)]
        b = Instance(person_schema, classes={"Person": o})
        for i, j, name in ((0, 1, "x0"), (1, 0, "x1"), (2, 3, "x0"), (3, 2, "x1")):
            b.assign(o[i], OTuple(name=name, friends=OSet([o[j]])))
        assert not are_o_isomorphic(a, b)

    def test_constants_matter(self, person_schema):
        a, _ = ring_instance(person_schema, 2)
        o = [Oid(), Oid()]
        b = Instance(person_schema, classes={"Person": o})
        b.assign(o[0], OTuple(name="DIFFERENT", friends=OSet([o[1]])))
        b.assign(o[1], OTuple(name="x1", friends=OSet([o[0]])))
        assert not are_o_isomorphic(a, b)

    def test_different_schema(self, person_schema):
        a, _ = ring_instance(person_schema, 2)
        other = Schema(classes={"Person": tuple_of(name=D, friends=set_of(classref("Person"))), "Extra": D})
        b = Instance(other)
        assert find_o_isomorphism(a, b) is None

    def test_undefined_values_respected(self, person_schema):
        o1, o2 = Oid(), Oid()
        a = Instance(person_schema, classes={"Person": [o1]})
        b = Instance(person_schema, classes={"Person": [o2]})
        assert are_o_isomorphic(a, b)
        b.assign(o2, OTuple(name="x", friends=OSet()))
        assert not are_o_isomorphic(a, b)

    def test_genesis_self_isomorphic_after_renaming(self):
        inst, oids = genesis_instance()
        mapping = {o: Oid() for o in oids.values()}
        image = apply_o_isomorphism(inst, mapping)
        found = find_o_isomorphism(inst, image)
        assert found is not None
        assert apply_o_isomorphism(inst, found) == image

    def test_relations_over_oids(self):
        schema = Schema(
            relations={"R": tuple_of(a=classref("P"))}, classes={"P": tuple_of()}
        )
        o1, o2 = Oid(), Oid()
        a = Instance(schema, classes={"P": [o1, o2]})
        a.add_relation_member("R", OTuple(a=o1))
        b = Instance(schema, classes={"P": [Oid(), Oid()]})
        assert not are_o_isomorphic(a, b)
        for o in b.classes["P"]:
            b.add_relation_member("R", OTuple(a=o))
            break
        assert are_o_isomorphic(a, b)


class TestAutomorphisms:
    def test_symmetric_pair(self, person_schema):
        # Two structurally identical, mutually-pointing persons: the swap
        # is an automorphism (cf. h0 in the proof of Theorem 4.3.1).
        o = [Oid(), Oid()]
        inst = Instance(person_schema, classes={"Person": o})
        inst.assign(o[0], OTuple(name="x", friends=OSet([o[1]])))
        inst.assign(o[1], OTuple(name="x", friends=OSet([o[0]])))
        autos = list(automorphisms(inst))
        assert len(autos) == 2  # identity + swap

    def test_asymmetric_instance_has_only_identity(self, person_schema):
        inst, _ = ring_instance(person_schema, 2)  # names x0 vs x1 differ
        autos = list(automorphisms(inst))
        assert len(autos) == 1

    def test_orbit_partition(self, person_schema):
        o = [Oid() for _ in range(3)]
        inst = Instance(person_schema, classes={"Person": o})
        inst.assign(o[0], OTuple(name="same", friends=OSet()))
        inst.assign(o[1], OTuple(name="same", friends=OSet()))
        inst.assign(o[2], OTuple(name="other", friends=OSet()))
        orbits = orbit_partition(inst, o)
        sizes = sorted(len(orbit) for orbit in orbits)
        assert sizes == [1, 2]
