"""Tests for the live IVM runtime (repro.iql.ivm / repro.iql.supports).

Three layers, mirroring the other engine test files:

* unit tests over the E19 acceptance shape — the counting path (exact
  support adjustments, zero fallbacks), the DRed path (over-delete then
  re-derive), the slice-recompute path (class-extent updates), net-delta
  normalization, error reporting, and the ``repro maintain`` CLI,
* the :class:`~repro.iql.supports.SupportTable` storage layer and the
  memoized :func:`~repro.analysis.maintenance.validate_certificate`
  front door,
* a differential property test over the same 220-seed corpus as
  ``test_differential``: after every update batch the maintained
  instance must equal a fresh full evaluation of the maintained base
  (exactly when invention-free, up to O-isomorphism otherwise), with
  the PR-6 ``replay_insert`` oracle cross-checked on certified inserts
  and the index/support invariants re-verified at the end.
"""

import random
import warnings

import pytest

from repro.analysis import build_certificates, replay_insert, validate_certificate
from repro.errors import EvaluationError
from repro.iql import Evaluator, MaterializedProgram
from repro.iql.supports import SupportTable
from repro.parser import program_from_source
from repro.schema import Instance, are_o_isomorphic
from repro.values import Oid, OTuple
from repro.__main__ import main

from tests.test_differential import (
    make_schema,
    random_instance,
    random_scheduled_program,
)
from tests.test_impact import E19_PROGRAM, random_new_fact


def materialize(program, instance, **kwargs):
    """Build a MaterializedProgram with preflight warnings silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return MaterializedProgram(program, instance, **kwargs)


def edge(a, b):
    return OTuple(A1=a, A2=b)


def e19_setup(n=5):
    """The E19 program over an acyclic n-edge chain."""
    program = program_from_source(E19_PROGRAM)
    instance = Instance(program.input_schema)
    for i in range(n):
        instance.add_relation_member("E", edge(f"n{i}", f"n{i + 1}"))
    return program, materialize(program, instance)


def assert_matches_fresh(mp):
    """The maintained instance equals a fresh run over the maintained base."""
    fresh = Evaluator(mp.program).run(mp.base.copy()).full
    assert mp.instance.ground_facts() == fresh.ground_facts()


class TestE19Paths:
    def test_initial_fixpoint_and_strategies(self):
        program, mp = e19_setup()
        # T is recursive (DRed); F is a non-recursive join over T (counting).
        cert = mp.certificates[("E", "insert")]
        strategies = dict(cert.classification)
        assert strategies["T"] == "dred"
        assert strategies["F"] == "counting"
        assert mp.supports.supported("F") == len(mp.extent("F"))
        assert mp._support_exact["F"]
        assert_matches_fresh(mp)

    def test_insert_only_no_fallback(self):
        program, mp = e19_setup()
        mp.apply_delta(inserts=[("E", edge("n5", "n0"))])  # close the cycle
        assert mp.stats.deltas_applied == 1
        assert mp.stats.maintenance_fallbacks == 0
        assert mp.stats.supports_adjusted > 0  # F counts grew exactly
        assert_matches_fresh(mp)
        assert mp.instance.indexes.equals_rebuild()

    def test_delete_overdeletes_and_rederives(self):
        program, mp = e19_setup()
        mp.apply_delta(inserts=[("E", edge("n5", "n0"))])
        before_over = mp.stats.overdeleted
        # Deleting one cycle edge kills all F facts but only part of T:
        # DRed must over-delete T conservatively and re-derive survivors.
        mp.apply_delta(deletes=[("E", edge("n5", "n0"))])
        assert mp.stats.maintenance_fallbacks == 0
        assert mp.stats.overdeleted > before_over
        assert mp.stats.rederived > 0
        assert mp.extent("F") == set()
        assert_matches_fresh(mp)
        assert mp.supports.negative_symbols() == []
        assert mp.instance.indexes.equals_rebuild()

    def test_mixed_batch(self):
        program, mp = e19_setup()
        mp.apply_delta(
            inserts=[("E", edge("n9", "n0")), ("E", edge("n5", "n9"))],
            deletes=[("E", edge("n2", "n3"))],
        )
        assert mp.stats.deltas_applied == 3
        assert_matches_fresh(mp)

    def test_class_insert_takes_slice_recompute(self):
        program, mp = e19_setup()
        o = Oid("p0")
        mp.apply_delta(inserts=[("P", o), ("Seed", OTuple(A1=o))])
        assert mp.stats.maintenance_fallbacks == 1
        assert o in mp.instance.classes["P"]
        assert mp.instance.nu[o] == OTuple()
        assert_matches_fresh(mp)

    def test_noop_batch_is_normalized_away(self):
        program, mp = e19_setup()
        snapshot = mp.instance.ground_facts()
        # Deletes-then-inserts: deleting and re-inserting a *present*
        # fact in one batch nets to nothing.
        fact = edge("n1", "n2")
        mp.apply_delta(inserts=[("E", fact)], deletes=[("E", fact)])
        # Re-inserting a present fact and deleting an absent one: same.
        mp.apply_delta(
            inserts=[("E", edge("n0", "n1"))], deletes=[("E", edge("q", "q"))]
        )
        assert mp.stats.deltas_applied == 0
        assert mp.stats.maintenance_fallbacks == 0
        assert mp.instance.ground_facts() == snapshot

    def test_delete_then_reinsert_round_trips(self):
        program, mp = e19_setup()
        snapshot = mp.instance.ground_facts()
        mp.apply_delta(deletes=[("E", edge("n2", "n3"))])
        assert_matches_fresh(mp)
        mp.apply_delta(inserts=[("E", edge("n2", "n3"))])
        assert mp.instance.ground_facts() == snapshot

    def test_output_projection_and_extent_queries(self):
        program, mp = e19_setup(n=2)
        out = mp.output()
        assert set(out.relations) == {"T", "F"}
        assert mp.extent("T") == set(mp.instance.relations["T"])
        assert mp.extent("P") == set()
        with pytest.raises(EvaluationError):
            mp.extent("nope")

    def test_update_validation_errors(self):
        program, mp = e19_setup(n=1)
        with pytest.raises(EvaluationError):
            mp.apply_delta(inserts=[("T", edge("a", "b"))])  # derived, not base
        with pytest.raises(EvaluationError):
            mp.apply_delta(inserts=[("P", OTuple())])  # class needs an oid

    def test_foreign_evaluator_rejected(self):
        program = program_from_source(E19_PROGRAM)
        other = program_from_source(E19_PROGRAM)
        with pytest.raises(EvaluationError):
            MaterializedProgram(
                program, Instance(program.input_schema), evaluator=Evaluator(other)
            )

    def test_uncompiled_uncheduled_evaluator_still_correct(self):
        # An unscheduled evaluator breaks the counting invariant; the
        # runtime must detect the inexact supports and demote, not corrupt.
        program = program_from_source(E19_PROGRAM)
        instance = Instance(program.input_schema)
        for i in range(4):
            instance.add_relation_member("E", edge(f"n{i}", f"n{i + 1}"))
        mp = materialize(
            program, instance, evaluator=Evaluator(program, seminaive=False)
        )
        mp.apply_delta(inserts=[("E", edge("n4", "n0"))])
        mp.apply_delta(deletes=[("E", edge("n1", "n2"))])
        assert_matches_fresh(mp)
        assert mp.supports.negative_symbols() == []


class TestSupportTable:
    def test_add_sub_and_pruning(self):
        t = SupportTable()
        fact = OTuple(A1="a")
        assert t.add("S", fact) == 1
        assert t.add("S", fact) == 2
        assert t.get("S", fact) == 2
        assert t.sub("S", fact) == 1
        assert t.sub("S", fact) == 0
        assert t.get("S", fact) == 0  # pruned at exactly zero
        assert t.supported("S") == 0

    def test_negative_counts_are_kept_and_reported(self):
        t = SupportTable()
        fact = OTuple(A1="a")
        assert t.sub("S", fact) == -1
        assert t.get("S", fact) == -1
        assert t.negative_symbols() == ["S"]

    def test_set_counts_drops_zeros(self):
        t = SupportTable()
        a, b = OTuple(A1="a"), OTuple(A1="b")
        t.set_counts("S", {a: 2, b: 0})
        assert dict(t.facts("S")) == {a: 2}
        assert t.total() == 2
        t.drop("S")
        assert t.supported("S") == 0
        assert "SupportTable" in repr(t)


class TestCertificateValidationMemo:
    def test_validation_is_cached_per_program(self):
        program = program_from_source(E19_PROGRAM)
        cert = next(
            c for c in build_certificates(program) if (c.base, c.op) == ("E", "insert")
        )
        assert validate_certificate(program, cert) == []
        assert getattr(cert, "_validation")[0] is program
        # Prove the memo is served: tamper with the cache entry.
        object.__setattr__(cert, "_validation", (program, ("IQL999 sentinel",)))
        assert validate_certificate(program, cert) == ["IQL999 sentinel"]
        # A different program object misses the memo and revalidates
        # (its rules are different objects, so violations are real ones,
        # not the sentinel).
        other = program_from_source(E19_PROGRAM)
        assert validate_certificate(other, cert) != ["IQL999 sentinel"]
        assert getattr(cert, "_validation")[0] is other

    def test_replay_insert_refuses_invalid_certificate(self):
        program = program_from_source(E19_PROGRAM)
        cert = next(
            c for c in build_certificates(program) if (c.base, c.op) == ("E", "insert")
        )
        instance = Instance(program.input_schema)
        instance.add_relation_member("E", edge("a", "b"))
        full = Evaluator(program).run(instance).full
        object.__setattr__(cert, "_validation", (program, ("IQL999 sentinel",)))
        with pytest.raises(ValueError, match="fails validation"):
            replay_insert(program, full, cert, edge("b", "c"))


class TestMaintainCLI:
    def test_script_session(self, tmp_path, capsys):
        from repro import io

        prog = tmp_path / "e19.iql"
        prog.write_text(E19_PROGRAM)
        program = program_from_source(E19_PROGRAM)
        instance = Instance(program.input_schema)
        for i in range(4):
            instance.add_relation_member("E", edge(f"n{i}", f"n{i + 1}"))
        data = tmp_path / "in.json"
        io.dump(instance, str(data))
        script = tmp_path / "session.txt"
        script.write_text(
            "# close the cycle, inspect, reopen it\n"
            '+E {"A1": "n4", "A2": "n0"}\n'
            "?F\n"
            "stats\n"
            "certs\n"
            '-E {"A1": "n4", "A2": "n0"}; +E {"A1": "n4", "A2": "n5"}\n'
            "?nope\n"
            "bogus line\n"
            "output\n"
            "quit\n"
        )
        rc = main(
            ["maintain", str(prog), "--input", str(data), "--script", str(script)]
        )
        out = capsys.readouterr()
        assert rc == 0
        assert "materialized in" in out.err
        assert "E:counting" in out.err or "E:dred" in out.err
        lines = out.out.splitlines()
        assert lines[0].startswith("ok: 1 net update(s)")
        assert any(line.startswith("deltas applied") for line in lines)
        assert any("E insert:" in line for line in lines)
        assert sum(1 for line in lines if line.startswith("error:")) == 2
        assert any('"T"' in line for line in lines)  # the output dump

    def test_class_oid_updates_from_script(self, tmp_path, capsys):
        from repro import io

        prog = tmp_path / "e19.iql"
        prog.write_text(E19_PROGRAM)
        program = program_from_source(E19_PROGRAM)
        instance = Instance(program.input_schema)
        instance.add_relation_member("E", edge("a", "b"))
        data = tmp_path / "in.json"
        io.dump(instance, str(data))
        script = tmp_path / "session.txt"
        script.write_text('+P "p0"\n?P\nquit\n')
        rc = main(
            ["maintain", str(prog), "--input", str(data), "--script", str(script)]
        )
        out = capsys.readouterr()
        assert rc == 0
        assert out.out.splitlines()[0].startswith("ok: 1 net update(s)")


# -- the 220-seed differential ------------------------------------------------------
#
# Same corpus and conventions as test_differential / test_impact: a fifth
# of the seeds invent oids, a quarter inject negation-through-recursion
# (forcing the scheduler fallback, inexact supports, and the DRed/demoted
# paths). The oracle after every batch is a fresh full evaluation of the
# maintained base input; certified single-fact inserts are additionally
# cross-checked against the PR-6 replay_insert oracle.


def random_batch(mp, rng):
    inserts, deletes = [], []
    for _ in range(rng.randint(1, 3)):
        base = rng.choice(["E", "U"])
        extent = sorted(mp.base.relations[base], key=repr)
        if extent and rng.random() < 0.4:
            deletes.append((base, rng.choice(extent)))
        else:
            inserts.append((base, random_new_fact(base, rng)))
    return inserts, deletes


def run_ivm_differential(seed):
    rng = random.Random(seed)
    schema = make_schema()
    allow_invention = seed % 5 == 0
    unstratified = seed % 4 == 1
    program = random_scheduled_program(schema, rng, allow_invention, unstratified)
    instance = random_instance(schema, rng)
    invention_free = all(rule.is_invention_free() for rule in program.rules)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        mp = MaterializedProgram(program, instance)

        cert = mp.certificates[("E", "insert")]
        if cert.certified and ("E", "insert") not in mp._violations:
            fact = random_new_fact("E", rng)
            if fact not in mp.instance.relations["E"]:
                expected = replay_insert(program, mp.instance, cert, fact)
                mp.apply_delta(inserts=[("E", fact)])
                if invention_free:
                    assert (
                        mp.instance.ground_facts() == expected.ground_facts()
                    ), f"seed {seed}: apply_delta diverges from replay_insert"
                else:
                    assert are_o_isomorphic(mp.instance, expected), (
                        f"seed {seed}: apply_delta not O-isomorphic to replay"
                    )

        for batch in range(3):
            inserts, deletes = random_batch(mp, rng)
            mp.apply_delta(inserts=inserts, deletes=deletes)
            fresh = Evaluator(program).run(mp.base.copy()).full
            if invention_free:
                assert mp.instance.ground_facts() == fresh.ground_facts(), (
                    f"seed {seed}, batch {batch}: exact disagreement"
                )
            else:
                assert are_o_isomorphic(mp.instance, fresh), (
                    f"seed {seed}, batch {batch}: not O-isomorphic"
                )
        assert mp.supports.negative_symbols() == [], f"seed {seed}: negative support"
        assert mp.instance.indexes.equals_rebuild(), f"seed {seed}: stale indexes"


@pytest.mark.parametrize("seed", range(220))
def test_ivm_matches_full_reevaluation(seed):
    run_ivm_differential(seed)
