"""Tests for the LDM simulation (Proposition 4.2.9)."""

import pytest

from repro.errors import SchemaError
from repro.iql import classify, evaluate, typecheck_program
from repro.schema import Instance, Schema
from repro.transform.ldm import (
    ldm_copy,
    ldm_difference,
    ldm_intersection,
    ldm_product,
    ldm_projection,
    ldm_selection,
    ldm_union,
)
from repro.typesys import D, set_of
from repro.values import Oid, OSet


@pytest.fixture
def schema():
    return Schema(
        classes={
            "A": D,
            "B": D,
            "Tags": set_of(D),
        }
    )


def populate(schema, a_values, b_values):
    instance = Instance(schema)
    for v in a_values:
        o = Oid()
        instance.add_class_member("A", o)
        instance.assign(o, v)
    for v in b_values:
        o = Oid()
        instance.add_class_member("B", o)
        instance.assign(o, v)
    return instance


def values_of(instance, class_name):
    return sorted(instance.value_of(o) for o in instance.classes[class_name])


def run(program, instance):
    typecheck_program(program)
    return evaluate(program, instance.project(program.input_schema))


class TestCopy:
    def test_copies_values_into_fresh_objects(self, schema):
        instance = populate(schema, ["x", "y"], [])
        program = ldm_copy(schema, "A", "Q")
        out = run(program, instance)
        assert values_of(out, "Q") == ["x", "y"]
        # fresh oids, not the originals
        assert not (out.classes["Q"] & instance.classes["A"])

    def test_set_valued_copy(self, schema):
        instance = Instance(schema)
        o = Oid()
        instance.add_class_member("Tags", o)
        for tag in ("t1", "t2"):
            instance.add_set_element(o, tag)
        program = ldm_copy(schema, "Tags", "Q")
        out = run(program, instance)
        (q,) = out.classes["Q"]
        assert out.value_of(q) == OSet(["t1", "t2"])

    def test_unknown_class(self, schema):
        with pytest.raises(SchemaError):
            ldm_copy(schema, "Nope", "Q")


class TestSetOperations:
    def test_union(self, schema):
        instance = populate(schema, ["x", "y"], ["y", "z"])
        out = run(ldm_union(schema, "A", "B", "Q"), instance)
        assert values_of(out, "Q") == ["x", "y", "y", "z"]  # node union

    def test_intersection_by_value(self, schema):
        instance = populate(schema, ["x", "y"], ["y", "z"])
        out = run(ldm_intersection(schema, "A", "B", "Q"), instance)
        assert values_of(out, "Q") == ["y"]

    def test_difference_by_value(self, schema):
        instance = populate(schema, ["x", "y"], ["y", "z"])
        out = run(ldm_difference(schema, "A", "B", "Q"), instance)
        assert values_of(out, "Q") == ["x"]

    def test_type_mismatch_rejected(self, schema):
        with pytest.raises(SchemaError):
            ldm_union(schema, "A", "Tags", "Q")


class TestProductProjectionSelection:
    def test_product(self, schema):
        instance = populate(schema, ["x", "y"], ["1", "2"])
        out = run(ldm_product(schema, "A", "B", "Pair"), instance)
        assert len(out.classes["Pair"]) == 4
        pairs = {
            (out.value_of(out.value_of(p)["f1"]), out.value_of(out.value_of(p)["f2"]))
            for p in out.classes["Pair"]
        }
        assert pairs == {("x", "1"), ("x", "2"), ("y", "1"), ("y", "2")}

    def test_projection(self, schema):
        # Operators compose with ";" — product then projection.
        instance = populate(schema, ["x", "y"], ["1"])
        product = ldm_product(schema, "A", "B", "Pair")
        pipeline = product.then(ldm_projection(product.schema, "Pair", "f1", "Q"))
        out = run(pipeline, instance)
        assert values_of(out, "Q") == ["x", "y"]

    def test_selection_by_value_equality(self, schema):
        # Pairs (a, b) with equal underlying values: populate with overlap.
        instance = populate(schema, ["x", "y"], ["y"])
        product = ldm_product(schema, "A", "B", "Pair")
        pipeline = product.then(
            ldm_selection(product.schema, "Pair", "f1", "f2", "Q")
        )
        out = run(pipeline, instance)
        assert len(out.classes["Q"]) == 1
        (q,) = out.classes["Q"]
        picked = out.value_of(q)
        assert out.value_of(picked["f1"]) == "y"

    def test_projection_validation(self, schema):
        with pytest.raises(SchemaError):
            ldm_projection(schema, "A", "f1", "Q")
        product = ldm_product(schema, "A", "B", "Pair")
        with pytest.raises(SchemaError):
            ldm_projection(product.schema, "Pair", "missing", "Q")


class TestMetaProperties:
    def test_all_operators_are_ptime(self, schema):
        programs = [
            ldm_copy(schema, "A", "Q1"),
            ldm_union(schema, "A", "B", "Q2"),
            ldm_intersection(schema, "A", "B", "Q3"),
            ldm_difference(schema, "A", "B", "Q4"),
            ldm_product(schema, "A", "B", "Q5"),
        ]
        for program in programs:
            report = classify(program)
            assert report.is_iql_rr, program

    def test_outputs_validate(self, schema):
        instance = populate(schema, ["x"], ["x", "z"])
        for builder in (
            lambda: ldm_union(schema, "A", "B", "Q"),
            lambda: ldm_intersection(schema, "A", "B", "Q"),
            lambda: ldm_difference(schema, "A", "B", "Q"),
        ):
            out = run(builder(), instance)
            out.validate()
