"""E3 — Example 3.4.1: nest and unnest as IQL programs."""


from repro.iql import classify, compose, evaluate, evaluate_full, nest_program, typecheck_program, unnest_program
from repro.schema import Instance
from repro.typesys import D
from repro.values import OSet, OTuple


def nested_instance(schema, groups):
    return Instance(
        schema,
        relations={
            "R1": [OTuple(A01=k, A02=OSet(vs)) for k, vs in groups.items()]
        },
    )


class TestUnnest:
    def test_unnest(self):
        program = typecheck_program(unnest_program("R1", "R2", D, D))
        inp = Instance(
            program.input_schema,
            relations={"R1": [OTuple(A01="k1", A02=OSet(["a", "b"])), OTuple(A01="k2", A02=OSet(["c"]))]},
        )
        out = evaluate(program, inp)
        rows = {(t["A01"], t["A02"]) for t in out.relations["R2"]}
        assert rows == {("k1", "a"), ("k1", "b"), ("k2", "c")}

    def test_unnest_drops_empty_groups(self):
        # Unnesting [k, {}] yields no rows — the classical lossy case.
        program = unnest_program("R1", "R2", D, D)
        inp = Instance(
            program.input_schema, relations={"R1": [OTuple(A01="k", A02=OSet())]}
        )
        out = evaluate(program, inp)
        assert out.relations["R2"] == set()

    def test_classified_rr(self):
        assert classify(unnest_program("R1", "R2", D, D)).is_iql_rr


class TestNest:
    def test_nest(self):
        program = typecheck_program(nest_program("R2", "R3", D, D))
        inp = Instance(
            program.input_schema,
            relations={
                "R2": [
                    OTuple(A01="k1", A02="a"),
                    OTuple(A01="k1", A02="b"),
                    OTuple(A01="k2", A02="c"),
                ]
            },
        )
        out = evaluate(program, inp)
        rows = {(t["A01"], frozenset(t["A02"])) for t in out.relations["R3"]}
        assert rows == {("k1", frozenset({"a", "b"})), ("k2", frozenset({"c"}))}

    def test_one_oid_per_key(self):
        program = nest_program("R2", "R3", D, D)
        inp = Instance(
            program.input_schema,
            relations={"R2": [OTuple(A01="k", A02=str(i)) for i in range(5)]},
        )
        result = evaluate_full(program, inp)
        assert result.stats.oids_invented == 1

    def test_classified_rr(self):
        # The paper: "Example 3.4.1 is ptime-restricted" — and in fact
        # range-restricted, with recursion-free invention.
        report = classify(nest_program("R2", "R3", D, D))
        assert report.is_iql_rr
        assert all(s.recursion_free or s.invention_free for s in report.stages)


class TestNestUnnestComposition:
    def test_unnest_then_nest_is_identity_on_grouped_relations(self):
        unnest = unnest_program("R1", "Mid", D, D)
        nest = nest_program("Mid", "Back", D, D)
        program = typecheck_program(compose(unnest, nest))
        groups = {"k1": ["a", "b"], "k2": ["c"]}
        inp = nested_instance(program.input_schema, groups)
        out = evaluate(program, inp)
        rows = {(t["A01"], frozenset(t["A02"])) for t in out.relations["Back"]}
        assert rows == {(k, frozenset(vs)) for k, vs in groups.items()}
