"""Unit and property tests for o-values (Definition 2.1.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OValueError
from repro.values import (
    Oid,
    OSet,
    OTuple,
    branching_factor,
    constants_of,
    ensure_ovalue,
    is_constant,
    is_ovalue,
    oids_of,
    render,
    sort_key,
    substitute_oids,
    value_depth,
    value_size,
)


class TestOid:
    def test_each_oid_is_fresh(self):
        assert Oid() != Oid()
        assert Oid("adam") != Oid("adam")

    def test_oid_is_not_its_name(self):
        # The paper stresses: the oid adam is distinct from the string Adam.
        adam = Oid("Adam")
        assert adam != "Adam"
        assert not is_constant(adam)

    def test_serials_increase(self):
        a, b = Oid(), Oid()
        assert a.serial < b.serial
        assert a < b

    def test_repr_uses_name(self):
        assert repr(Oid("eve")) == "&eve"

    def test_hashable_and_identity_equal(self):
        o = Oid()
        assert {o: 1}[o] == 1


class TestOTuple:
    def test_attribute_order_is_canonical(self):
        assert OTuple(B=1, A=2) == OTuple({"A": 2, "B": 1})
        assert hash(OTuple(B=1, A=2)) == hash(OTuple(A=2, B=1))

    def test_empty_tuple_allowed(self):
        assert len(OTuple()) == 0
        assert OTuple() == OTuple({})

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(OValueError):
            OTuple([("A", 1), ("A", 2)])

    def test_getitem_and_get(self):
        t = OTuple(name="Cain", kills=1)
        assert t["name"] == "Cain"
        assert t.get("missing") is None
        with pytest.raises(KeyError):
            t["missing"]

    def test_contains_and_iter(self):
        t = OTuple(a=1, b=2)
        assert "a" in t and "c" not in t
        assert list(t) == ["a", "b"]

    def test_replace(self):
        t = OTuple(a=1, b=2)
        assert t.replace(b=3) == OTuple(a=1, b=3)
        assert t.replace(c=4)["c"] == 4

    def test_non_ovalue_component_rejected(self):
        with pytest.raises(OValueError):
            OTuple(a=object())

    def test_non_string_attribute_rejected(self):
        with pytest.raises(OValueError):
            OTuple({1: "x"})


class TestOSet:
    def test_duplicate_elimination(self):
        assert OSet([1, 1, 2]) == OSet([2, 1])
        assert len(OSet(["a", "a"])) == 1

    def test_empty_set(self):
        assert len(OSet()) == 0
        assert OSet() == OSet([])

    def test_add_is_persistent(self):
        s = OSet([1])
        s2 = s.add(2)
        assert 2 in s2 and 2 not in s
        assert s.add(1) is s  # no-op returns self

    def test_union(self):
        assert OSet([1]).union([2, 3]) == OSet([1, 2, 3])

    def test_sets_of_sets(self):
        nested = OSet([OSet([1]), OSet()])
        assert OSet([1]) in nested
        assert OSet() in nested

    def test_non_ovalue_rejected(self):
        with pytest.raises(OValueError):
            OSet([object()])


class TestPredicates:
    def test_is_ovalue(self):
        assert is_ovalue("d")
        assert is_ovalue(0)
        assert is_ovalue(Oid())
        assert is_ovalue(OTuple())
        assert is_ovalue(OSet())
        assert not is_ovalue(object())
        assert not is_ovalue([1, 2])

    def test_ensure_ovalue_coerces_containers(self):
        v = ensure_ovalue({"name": "Eve", "kids": ["cain", "abel"]})
        assert isinstance(v, OTuple)
        assert v["kids"] == OSet(["cain", "abel"])

    def test_ensure_ovalue_rejects_junk(self):
        with pytest.raises(OValueError):
            ensure_ovalue(object())


class TestTraversals:
    def test_constants_and_oids(self):
        o1, o2 = Oid(), Oid()
        v = OTuple(a="x", b=OSet([o1, OTuple(c=o2, d=3)]))
        assert constants_of(v) == frozenset({"x", 3})
        assert oids_of(v) == frozenset({o1, o2})

    def test_substitute_oids(self):
        o1, o2, o3 = Oid(), Oid(), Oid()
        v = OSet([o1, OTuple(a=o2)])
        out = substitute_oids(v, {o1: o3, o2: o3})
        assert oids_of(out) == frozenset({o3})

    def test_substitution_can_replace_by_values(self):
        o = Oid()
        assert substitute_oids(OSet([o]), {o: "gone"}) == OSet(["gone"])

    def test_branching_factor(self):
        assert branching_factor("c") == 0
        assert branching_factor(OSet(range(5))) == 5
        assert branching_factor(OTuple(a=OSet(range(7)), b=1)) == 7

    def test_depth_and_size(self):
        assert value_depth("c") == 0
        assert value_depth(OSet()) == 1
        assert value_depth(OTuple(a=OSet([OTuple()]))) == 3
        assert value_size(OTuple(a=1, b=2)) == 3


# -- property tests -------------------------------------------------------------

constants = st.one_of(
    st.text(max_size=4), st.integers(-100, 100), st.booleans()
)


def ovalues(max_depth: int = 3):
    return st.recursive(
        constants,
        lambda children: st.one_of(
            st.lists(children, max_size=3).map(OSet),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), children, max_size=3
            ).map(OTuple),
        ),
        max_leaves=8,
    )


@given(ovalues())
def test_ovalues_hash_consistent_with_eq(v):
    assert v == v
    assert hash(v) == hash(v)


@given(ovalues(), ovalues())
def test_sort_key_total_order(a, b):
    ka, kb = sort_key(a), sort_key(b)
    assert (ka < kb) or (kb < ka) or (ka == kb)
    if a == b:
        assert ka == kb


@given(ovalues())
def test_render_is_deterministic(v):
    assert render(v) == render(v)


@given(st.lists(ovalues(), max_size=5))
def test_oset_models_frozenset(elements):
    assert len(OSet(elements)) == len(set(elements))


@given(ovalues())
def test_size_bounds_depth(v):
    assert value_size(v) >= value_depth(v)
