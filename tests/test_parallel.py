"""The IQL8xx parallel-safety analysis and the certified parallel executor.

Three layers under test, mirroring the maintenance-certificate suite:

* the **analysis** — conflict groups, hash-partitionability, the stratum
  DAG with its concurrent batches, the IQL801-804 diagnostics, and the
  runtime-surface audit (including injected drifted surfaces),
* the **certificate discipline** — re-derivation, memoized validation,
  and tamper detection: any hand-mutated plan must be caught by
  :func:`check_parallel_certificate` before an executor trusts it,
* the **executor** — ``Evaluator(parallel=N)`` agrees with the serial
  engines on concurrent strata, partitioned delta rounds, and every
  fallback shape (IQL801/802 programs run serial with a
  PreflightWarning, never wrong answers).
"""

import warnings

import pytest

from repro.analysis import (
    PreflightWarning,
    audit_runtime_surfaces,
    build_parallel_certificate,
    check_parallel_certificate,
    concurrent_batches,
    parallel_pass,
    parallel_to_dot,
    render_parallel_text,
    validate_parallel_certificate,
)
from repro.iql import Evaluator, Program, Rule, Var, atom, columns
from repro.schema import Instance, Schema
from repro.typesys import D, classref, tuple_of
from repro.values import OTuple


def tc_schema():
    return Schema(
        relations={"E": columns(D, D), "TC": columns(D, D)},
        classes={},
    )


def tc_program(schema=None):
    schema = schema or tc_schema()
    x, y, z = Var("x", D), Var("y", D), Var("z", D)
    return Program(
        schema,
        rules=[
            Rule(atom(schema, "TC", x, y), [atom(schema, "E", x, y)]),
            Rule(
                atom(schema, "TC", x, z),
                [atom(schema, "TC", x, y), atom(schema, "E", y, z)],
            ),
        ],
        input_names=["E"],
        output_names=["TC"],
    )


def chain_instance(schema, n, cyclic=False):
    instance = Instance(schema.project(["E"]))
    for i in range(n if cyclic else n - 1):
        instance.add_relation_member(
            "E", OTuple(A01=f"n{i}", A02=f"n{(i + 1) % n}")
        )
    return instance


# -- the analysis --------------------------------------------------------------------


def test_transitive_closure_certificate_is_clean():
    certificate = build_parallel_certificate(tc_program())
    assert certificate.certified
    assert certificate.clean
    assert certificate.width >= 2
    [stage] = certificate.stages
    assert stage.scheduled
    [stratum] = stage.strata
    # Both rules write TC: one conflict, one fused group — yet the
    # stratum is partitionable, so it is not an IQL801 serialization.
    assert len(stratum.groups) == 1
    assert stratum.conflicts and stratum.conflicts[0].kind == "write-write"
    assert stratum.conflicts[0].symbols == ("TC",)
    assert stratum.partitionable
    assert stratum.fallback is None
    recursive = stratum.partitions[1]
    assert recursive.partitionable
    assert set(recursive.key_variables) == {"x", "y", "z"}
    diagnostics = parallel_pass(tc_program(), certificate=certificate)
    assert [d.code for d in diagnostics] == ["IQL804"]


def test_conflict_serialized_stratum_is_iql801():
    # Two rules writing T driven only by a class extent: the write-write
    # conflict fuses them and neither has a relation delta to split.
    schema = Schema(
        relations={"T": columns(classref("C"), classref("C"))},
        classes={"C": tuple_of(a=D)},
    )
    x, y = Var("x", classref("C")), Var("y", classref("C"))
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x, x), [atom(schema, "C", x)]),
            Rule(atom(schema, "T", x, y), [atom(schema, "C", x), atom(schema, "C", y)]),
        ],
        input_names=["C"],
        output_names=["T", "C"],
    )
    certificate = build_parallel_certificate(program)
    assert certificate.certified
    assert not certificate.clean
    [stratum] = certificate.stages[0].strata
    assert stratum.fallback is not None and stratum.fallback.startswith("IQL801")
    assert not stratum.parallel_safe
    codes = [d.code for d in parallel_pass(program, certificate=certificate)]
    assert codes == ["IQL801"]


def test_invention_stratum_is_iql802_even_when_scheduled():
    # Non-recursive invention schedules fine (IQL6xx) but can never be
    # partitioned: the oid factory and blocking condition are
    # step-ordered.
    schema = Schema(
        relations={"E": columns(D, D), "TC": columns(D, classref("C"))},
        classes={"C": tuple_of(a=D)},
    )
    x, y = Var("x", D), Var("y", D)
    program = Program(
        schema,
        rules=[Rule(atom(schema, "TC", x, Var("p", classref("C"))), [atom(schema, "E", x, y)])],
        input_names=["E"],
        output_names=["TC", "C"],
    )
    certificate = build_parallel_certificate(program)
    [stage] = certificate.stages
    assert stage.scheduled
    [stratum] = stage.strata
    assert stratum.hazards and "invents oids" in stratum.hazards[0]
    assert stratum.fallback.startswith("IQL802")
    assert not stratum.parallel_safe
    codes = {d.code for d in parallel_pass(program, certificate=certificate)}
    assert codes == {"IQL802"}


def test_independent_strata_share_a_level_and_batch():
    schema = Schema(
        relations={"E": columns(D, D), "T": columns(D, D), "U": columns(D)},
        classes={},
    )
    x, y = Var("x", D), Var("y", D)
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
            Rule(atom(schema, "U", x), [atom(schema, "E", x, y)]),
        ],
        input_names=["E"],
        output_names=["T", "U"],
    )
    certificate = build_parallel_certificate(program)
    assert certificate.clean
    [stage] = certificate.stages
    assert len(stage.strata) == 2
    assert stage.levels == ((0, 1),)
    assert concurrent_batches(stage) == [(0, 1)]
    assert stage.width == 2


def test_dependent_strata_split_levels():
    schema = Schema(
        relations={"E": columns(D, D), "T": columns(D, D), "F": columns(D, D)},
        classes={},
    )
    x, y = Var("x", D), Var("y", D)
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
            Rule(atom(schema, "F", x, y), [atom(schema, "T", x, y)]),
        ],
        input_names=["E"],
        output_names=["F"],
    )
    [stage] = build_parallel_certificate(program).stages
    assert stage.strata[1].depends_on == (0,)
    assert stage.levels == ((0,), (1,))
    assert concurrent_batches(stage) == [(0,), (1,)]


def test_class_writers_never_share_a_batch():
    # Two class-membership-writing strata may not co-run: the _class_of
    # disjointness check in add_class_member is check-then-act.
    schema = Schema(
        relations={"R1": columns(classref("C1")), "R2": columns(classref("C2"))},
        classes={"C1": tuple_of(a=D), "C2": tuple_of(a=D)},
    )
    x1, x2 = Var("x", classref("C1")), Var("y", classref("C2"))
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "R1", x1), [atom(schema, "C1", x1)]),
            Rule(atom(schema, "R2", x2), [atom(schema, "C2", x2)]),
        ],
        input_names=["C1", "C2"],
        output_names=["R1", "R2"],
    )
    [stage] = build_parallel_certificate(program).stages
    assert len(stage.strata) == 2
    # These strata only *read* class extents — they batch together ...
    assert concurrent_batches(stage) == [(0, 1)]
    # ... but strata that *write* class extents must not.
    x, y = Var("x", D), Var("y", D)
    schema2 = Schema(
        relations={"E": columns(D, D)},
        classes={"C1": tuple_of(a=D), "C2": tuple_of(a=D)},
    )
    program2 = Program(
        schema2,
        rules=[
            Rule(
                atom(schema2, "C1", Var("p", classref("C1"))),
                [atom(schema2, "E", x, y)],
            ),
            Rule(
                atom(schema2, "C2", Var("q", classref("C2"))),
                [atom(schema2, "E", x, y)],
            ),
        ],
        input_names=["E"],
        output_names=["C1", "C2"],
    )
    [stage2] = build_parallel_certificate(program2).stages
    for batch in concurrent_batches(stage2):
        writers = [
            i for i in batch if stage2.strata[i].class_writes
        ]
        assert len(writers) <= 1


def test_renderers_cover_the_plan():
    certificate = build_parallel_certificate(tc_program())
    text = render_parallel_text(certificate)
    assert "certified" in text and "partitionable" in text and "conflict" in text
    dot = parallel_to_dot(certificate)
    assert dot.startswith("digraph parallel {") and "peripheries=2" in dot
    doc = certificate.to_json()
    assert doc["certified"] and doc["clean"]
    assert doc["stages"][0]["batches"] == [[1]]


# -- the runtime-surface audit -------------------------------------------------------


class _DriftedCompile:
    """A compile module whose kernel grew an unaudited capture slot."""

    class CompiledBody:
        __slots__ = ("slot_vars", "slot_index", "entry", "sink_cell",
                     "instance", "indexes", "scratch")

        def valid_for(self, instance):
            return True

    @staticmethod
    def compile_seminaive(*args, **kwargs):
        raise NotImplementedError


def test_audit_passes_on_the_real_runtime():
    checks = audit_runtime_surfaces()
    assert all(check.holds for check in checks), [
        f"{c.surface}: {c.detail}" for c in checks if not c.holds
    ]


def test_audit_catches_a_drifted_kernel_surface():
    checks = audit_runtime_surfaces(compile_module=_DriftedCompile)
    failed = [c for c in checks if not c.holds]
    assert failed and any("CompiledBody" in c.surface for c in failed)
    certificate = build_parallel_certificate(tc_program(), audit=checks)
    assert not certificate.certified
    assert not certificate.clean
    codes = [d.code for d in parallel_pass(tc_program(), certificate=certificate)]
    assert "IQL803" in codes


def test_iql803_disables_the_pool_but_not_the_answer(monkeypatch):
    import repro.analysis.parallel as parallel_module

    drifted = audit_runtime_surfaces(compile_module=_DriftedCompile)
    monkeypatch.setattr(
        parallel_module, "audit_runtime_surfaces", lambda *a, **k: drifted
    )
    schema = tc_schema()
    program = tc_program(schema)
    instance = chain_instance(schema, 12)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = Evaluator(program, parallel=4).run(instance.copy())
    assert any(
        issubclass(w.category, PreflightWarning) and "IQL803" in str(w.message)
        for w in caught
    )
    assert result.stats.parallel_workers == 0  # pool never created
    reference = Evaluator(program, seminaive=False, indexed=False).run(
        instance.copy()
    )
    assert result.output == reference.output


# -- certificate discipline: re-derivation and tamper detection ----------------------


def test_validation_is_memoized_per_program():
    program = tc_program()
    certificate = build_parallel_certificate(program)
    assert validate_parallel_certificate(program, certificate) == []
    assert certificate._validation[0] is program
    assert validate_parallel_certificate(program, certificate) == []


def test_tampered_hazard_promotion_is_caught():
    schema = Schema(
        relations={"E": columns(D, D), "TC": columns(D, classref("C"))},
        classes={"C": tuple_of(a=D)},
    )
    x, y = Var("x", D), Var("y", D)
    program = Program(
        schema,
        rules=[Rule(atom(schema, "TC", x, Var("p", classref("C"))), [atom(schema, "E", x, y)])],
        input_names=["E"],
        output_names=["TC", "C"],
    )
    certificate = build_parallel_certificate(program)
    [stage] = certificate.stages
    [stratum] = stage.strata
    # Forge a certificate that promotes the invention stratum to safe.
    import dataclasses

    promoted = dataclasses.replace(stratum, fallback=None)
    forged_stage = dataclasses.replace(stage, strata=(promoted,))
    object.__setattr__(certificate, "stages", (forged_stage,))
    violations = check_parallel_certificate(program, certificate)
    assert violations
    assert any("does not re-derive" in v for v in violations)
    assert any("hazards recorded but no serial fallback" in v for v in violations)


def test_tampered_group_split_is_caught():
    program = tc_program()
    certificate = build_parallel_certificate(program)
    [stage] = certificate.stages
    [stratum] = stage.strata
    import dataclasses

    # Split the two conflicting rules into separate groups.
    split = dataclasses.replace(stratum, groups=((0,), (1,)))
    object.__setattr__(
        certificate, "stages", (dataclasses.replace(stage, strata=(split,)),)
    )
    violations = check_parallel_certificate(program, certificate)
    assert any("sit in different groups" in v for v in violations)


def test_forged_audit_failures_are_caught():
    program = tc_program()
    certificate = build_parallel_certificate(program)
    drifted = audit_runtime_surfaces(compile_module=_DriftedCompile)
    object.__setattr__(certificate, "audit", drifted)
    violations = check_parallel_certificate(program, certificate)
    assert any("stale or tampered audit" in v for v in violations)


# -- the executor --------------------------------------------------------------------


def test_partitioned_rounds_match_serial_exactly():
    schema = tc_schema()
    program = tc_program(schema)
    instance = chain_instance(schema, 120, cyclic=True)
    parallel = Evaluator(program, parallel=4, compile=True).run(instance.copy())
    serial = Evaluator(program, schedule=True, compile=True).run(instance.copy())
    assert parallel.output == serial.output
    assert parallel.stats.parallel_workers == 4
    assert parallel.stats.parallel_partitioned == 1
    assert parallel.stats.parallel_tasks > 0
    assert len(parallel.output.relations["TC"]) == 120 * 120


def test_small_deltas_stay_inline():
    # Below PARTITION_THRESHOLD no worker tasks are submitted; the
    # partitioned runner degenerates to the serial round loop.
    schema = tc_schema()
    program = tc_program(schema)
    instance = chain_instance(schema, 6)
    result = Evaluator(program, parallel=4, compile=True).run(instance.copy())
    assert result.stats.parallel_partitioned == 1
    assert result.stats.parallel_tasks == 0
    serial = Evaluator(program, schedule=True, compile=True).run(instance.copy())
    assert result.output == serial.output


def test_concurrent_strata_run_on_workers():
    schema = Schema(
        relations={"E": columns(D, D), "T": columns(D, D), "U": columns(D)},
        classes={},
    )
    x, y = Var("x", D), Var("y", D)
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
            Rule(atom(schema, "U", x), [atom(schema, "E", x, y)]),
        ],
        input_names=["E"],
        output_names=["T", "U"],
    )
    instance = Instance(schema.project(["E"]))
    for i in range(30):
        instance.add_relation_member("E", OTuple(A01=f"a{i}", A02=f"b{i}"))
    parallel = Evaluator(program, parallel=2).run(instance.copy())
    serial = Evaluator(program, schedule=True).run(instance.copy())
    assert parallel.output == serial.output
    assert parallel.stats.parallel_strata == 2
    assert parallel.stats.parallel_tasks >= 2


def test_iql801_program_falls_back_serial_with_warning():
    schema = Schema(
        relations={"T": columns(classref("C"), classref("C"))},
        classes={"C": tuple_of(a=D)},
    )
    x, y = Var("x", classref("C")), Var("y", classref("C"))
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x, x), [atom(schema, "C", x)]),
            Rule(atom(schema, "T", x, y), [atom(schema, "C", x), atom(schema, "C", y)]),
        ],
        input_names=["C"],
        output_names=["T", "C"],
    )
    from repro.values.ovalues import Oid

    instance = Instance(schema.project(["C"]))
    for i in range(4):
        instance.add_class_member("C", Oid(f"o{i}"))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = Evaluator(program, parallel=4).run(instance.copy())
    assert any(
        issubclass(w.category, PreflightWarning) and "IQL801" in str(w.message)
        for w in caught
    )
    assert result.stats.parallel_fallbacks >= 1
    reference = Evaluator(program, seminaive=False, indexed=False).run(
        instance.copy()
    )
    assert result.output == reference.output


def test_iql802_invention_program_falls_back_serial_with_warning():
    schema = Schema(
        relations={"E": columns(D, D), "TC": columns(D, classref("C"))},
        classes={"C": tuple_of(a=D)},
    )
    x, y = Var("x", D), Var("y", D)
    program = Program(
        schema,
        rules=[Rule(atom(schema, "TC", x, Var("p", classref("C"))), [atom(schema, "E", x, y)])],
        input_names=["E"],
        output_names=["TC", "C"],
    )
    instance = Instance(schema.project(["E"]))
    for i in range(5):
        instance.add_relation_member("E", OTuple(A01=f"a{i}", A02=f"b{i}"))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = Evaluator(program, parallel=4).run(instance.copy())
    assert any(
        issubclass(w.category, PreflightWarning) and "IQL802" in str(w.message)
        for w in caught
    )
    assert result.stats.parallel_fallbacks >= 1
    from repro.schema import are_o_isomorphic

    reference = Evaluator(program, seminaive=False, indexed=False).run(
        instance.copy()
    )
    assert are_o_isomorphic(result.output, reference.output)


def test_parallel_one_is_plain_scheduling():
    # parallel=1 validates the certificate but never opens a pool.
    schema = tc_schema()
    program = tc_program(schema)
    instance = chain_instance(schema, 10)
    result = Evaluator(program, parallel=1).run(instance.copy())
    assert result.stats.parallel_workers == 0
    serial = Evaluator(program, schedule=True).run(instance.copy())
    assert result.output == serial.output


def test_parallel_implies_schedule():
    evaluator = Evaluator(tc_program(), parallel=2)
    assert evaluator.schedule
    assert evaluator._schedule is not None
    assert evaluator._parallel_certificate is not None


def test_trace_disables_parallel():
    evaluator = Evaluator(tc_program(), parallel=4, trace=True)
    assert evaluator.parallel == 0
    assert evaluator._parallel_certificate is None


# -- the process backend -------------------------------------------------------------
#
# Shared-nothing workers: the same certificate, a different driver. What
# the thread tests establish for barrier discipline, these establish for
# the serialization channel — worker facts must re-canonicalize into the
# coordinator's store with identity intact, on every diff shape the
# hazard-free fragment admits (relation members, class members, set
# elements).


def test_process_partitioned_rounds_match_serial_exactly():
    schema = tc_schema()
    program = tc_program(schema)
    instance = chain_instance(schema, 300)
    evaluator = Evaluator(program, parallel=2, compile=True, backend="process")
    try:
        parallel = evaluator.run(instance.copy())
    finally:
        evaluator.close()
    serial = Evaluator(program, schedule=True, compile=True).run(instance.copy())
    assert parallel.output == serial.output
    assert parallel.stats.parallel_backend == "process"
    assert parallel.stats.parallel_partitioned == 1
    # 300-long chains push delta rounds past the process threshold, so
    # workers really drove rounds (not the inline fallback).
    assert parallel.stats.parallel_tasks > 0


def test_process_pool_persists_across_runs():
    schema = tc_schema()
    program = tc_program(schema)
    instance = chain_instance(schema, 40)
    serial = Evaluator(program, schedule=True, compile=True).run(instance.copy())
    evaluator = Evaluator(program, parallel=2, compile=True, backend="process")
    try:
        first = evaluator.run(instance.copy())
        pool = evaluator._driver
        assert pool is not None and all(p.is_alive() for p in pool._processes)
        second = evaluator.run(instance.copy())
        # One persistent pool per Evaluator: the second run reuses it.
        assert evaluator._driver is pool
        assert first.output == serial.output
        assert second.output == serial.output
    finally:
        evaluator.close()
    assert evaluator._driver is None
    for process in pool._processes:
        process.join(timeout=5)
        assert not process.is_alive()


def test_process_concurrent_strata_ship_oids_by_identity():
    # Three independent strata (one a class writer) batch across two
    # process workers; the derived facts carry oids, which must come
    # back from the workers as the coordinator's OWN oid objects — the
    # merge re-canonicalizes, it never copies.
    schema = Schema(
        relations={
            "R1": columns(classref("C1")),
            "T": columns(classref("C1")),
            "U": columns(classref("C1"), classref("C1")),
        },
        classes={"C1": tuple_of(a=D)},
    )
    x = Var("x", classref("C1"))
    program = Program(
        schema,
        rules=[
            Rule(atom(schema, "T", x), [atom(schema, "R1", x)]),
            Rule(atom(schema, "U", x, x), [atom(schema, "R1", x)]),
            # A hazard-free class writer (re-derives existing members —
            # class disjointness admits nothing else without invention):
            # exercises the one-class-writer-per-batch schedule and the
            # empty class diff crossing the boundary.
            Rule(atom(schema, "C1", x), [atom(schema, "R1", x)]),
        ],
        input_names=["R1", "C1"],
        output_names=["T", "U", "C1"],
    )
    from repro.values import Oid

    instance = Instance(schema.project(["R1", "C1"]))
    oids = []
    for i in range(12):
        oid = Oid(f"c{i}")
        oids.append(oid)
        instance.add_class_member("C1", oid)
        instance.assign(oid, OTuple(a=i))
        instance.add_relation_member("R1", OTuple(A01=oid))
    serial = Evaluator(program, schedule=True).run(instance.copy())
    evaluator = Evaluator(program, parallel=2, backend="process")
    try:
        parallel = evaluator.run(instance.copy())
    finally:
        evaluator.close()
    assert parallel.output == serial.output
    assert parallel.stats.parallel_strata >= 2
    # Identity, not isomorphism: the oids inside the derived facts ARE
    # the input's oid objects, not structural twins.
    derived_oids = {fact["A01"] for fact in parallel.full.relations["T"]}
    assert all(any(o is oid for oid in oids) for o in derived_oids)


def test_process_certificate_records_backend_and_audits_serialization():
    program = tc_program()
    certificate = build_parallel_certificate(program, backend="process")
    assert certificate.backend == "process"
    assert certificate.certified
    surfaces = [check.surface for check in certificate.audit]
    assert "values pickling re-interns" in surfaces
    assert "schema.Instance pickled state" in surfaces
    assert "iql.Rule pickled state" in surfaces
    assert "parexec process worker entry" in surfaces
    assert certificate.to_json()["backend"] == "process"
    assert check_parallel_certificate(program, certificate) == []
    # The thread certificate does not carry (or need) those checks.
    thread = build_parallel_certificate(program)
    assert thread.backend == "thread"
    assert "values pickling re-interns" not in [c.surface for c in thread.audit]
    assert "backend process" in render_parallel_text(certificate)


def test_certificate_with_unknown_backend_is_rejected():
    import dataclasses

    program = tc_program()
    certificate = build_parallel_certificate(program)
    forged = dataclasses.replace(certificate, backend="gpu")
    violations = check_parallel_certificate(program, forged)
    assert violations and "unknown backend" in violations[0]


def test_parallel_auto_resolves_to_cpus_clamped_by_width():
    import os

    program = tc_program()
    evaluator = Evaluator(program, parallel="auto")
    assert evaluator._parallel_certificate is not None
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    width = evaluator._parallel_certificate.width
    assert evaluator.parallel == max(1, min(cpus, width))
    # And it still answers correctly whatever the resolved width.
    schema = tc_schema()
    instance = chain_instance(schema, 12)
    serial = Evaluator(tc_program(schema), schedule=True).run(instance.copy())
    assert evaluator.run(instance.copy()).output == serial.output


def test_unknown_backend_raises():
    from repro.errors import EvaluationError

    with pytest.raises(EvaluationError):
        Evaluator(tc_program(), parallel=2, backend="gpu")
    with pytest.raises(EvaluationError):
        Evaluator(tc_program(), parallel="some")
