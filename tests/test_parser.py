"""Tests for the surface syntax: lexer, parsers, type inference."""

import pytest

from repro.errors import ParseError
from repro.inheritance import InheritanceSchema
from repro.iql import classify, evaluate, typecheck_program
from repro.parser import (
    program_from_source,
    schema_from_source,
    tokenize,
    type_from_source,
)
from repro.schema import Instance, Schema
from repro.typesys import D, EMPTY, classref, set_of, tuple_of, union, intersection
from repro.values import OTuple


class TestLexer:
    def test_idents_and_keywords(self):
        tokens = tokenize("schema R0 p' x^")
        assert [t.kind for t in tokens] == ["keyword", "ident", "ident", "ident", "^", "eof"]
        assert tokens[2].value == "p'"

    def test_punctuation_and_strings(self):
        tokens = tokenize('R(x) :- S("a b", 42, -1.5).')
        values = [t.value for t in tokens if t.kind in ("string", "number")]
        assert values == ["a b", "42", "-1.5"]

    def test_comments_ignored(self):
        tokens = tokenize("x -- a comment\ny")
        assert [t.value for t in tokens[:-1]] == ["x", "y"]

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("€")


class TestTypeParsing:
    def test_atoms(self):
        assert type_from_source("D") == D
        assert type_from_source("none") == EMPTY
        assert type_from_source("P", ["P"]) == classref("P")

    def test_constructors(self):
        assert type_from_source("{D}") == set_of(D)
        assert type_from_source("[a: D, b: {D}]") == tuple_of(a=D, b=set_of(D))
        assert type_from_source("[]") == tuple_of()

    def test_union_intersection(self):
        assert type_from_source("D | P", ["P"]) == union(D, classref("P"))
        assert type_from_source("(P & Q)", ["P", "Q"]) == intersection(
            classref("P"), classref("Q")
        )

    def test_unknown_class_rejected(self):
        with pytest.raises(ParseError):
            type_from_source("P", ["Q"])

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            type_from_source("D D")


class TestSchemaParsing:
    def test_plain_schema(self):
        schema = schema_from_source(
            """
            schema {
              relation R: [A1: D, A2: D];
              class P: [name: D, friends: {P}];
            }
            """
        )
        assert isinstance(schema, Schema)
        assert schema.relations["R"] == tuple_of(A1=D, A2=D)
        assert schema.classes["P"].class_names() == {"P"}

    def test_forward_references(self):
        schema = schema_from_source(
            """
            schema {
              relation Uses: First;
              class First: [next: Second];
              class Second: [prev: First];
            }
            """
        )
        assert schema.relations["Uses"] == classref("First")

    def test_isa_produces_inheritance_schema(self):
        schema = schema_from_source(
            """
            schema {
              class person: [name: D];
              class student isa person: [course: D];
            }
            """
        )
        assert isinstance(schema, InheritanceSchema)
        assert schema.hierarchy.leq("student", "person")
        assert schema.effective_type("student") == tuple_of(name=D, course=D)

    def test_bad_declaration(self):
        with pytest.raises(ParseError):
            schema_from_source("schema { table X: D; }")


class TestProgramParsing:
    TC = """
    schema {
      relation E: [A1: D, A2: D];
      relation T: [A1: D, A2: D];
    }
    input E
    output T
    rules {
      T(x, y) :- E(x, y).
      T(x, z) :- T(x, y), E(y, z).
    }
    """

    def test_transitive_closure(self):
        program = typecheck_program(program_from_source(self.TC))
        assert classify(program).is_iql_rr
        inp = Instance(
            program.input_schema,
            relations={"E": [OTuple(A1="a", A2="b"), OTuple(A1="b", A2="c")]},
        )
        out = evaluate(program, inp)
        assert len(out.relations["T"]) == 3

    def test_explicit_var_declarations(self):
        source = """
        schema { relation S: D; relation Pow: {D}; }
        var X: {D}
        input S
        output Pow
        rules { Pow(X) :- X = X. }
        """
        program = program_from_source(source)
        typecheck_program(program)
        inp = Instance(program.input_schema, relations={"S": ["a", "b"]})
        out = evaluate(program, inp)
        assert len(out.relations["Pow"]) == 4

    def test_stage_separator(self):
        source = """
        schema { relation A: D; relation B: D; relation C: D; }
        input A
        output C
        rules {
          B(x) :- A(x).
          ;
          C(x) :- B(x).
        }
        """
        program = program_from_source(source)
        assert len(program.stages) == 2

    def test_negation_and_inequality(self):
        source = """
        schema { relation S: D; relation R: [A1: D, A2: D]; relation Out: D; }
        input S, R
        output Out
        rules {
          Out(x) :- S(x), not R(x, x), x != "banned".
        }
        """
        program = typecheck_program(program_from_source(source))
        inp = Instance(
            program.input_schema,
            relations={"S": ["a", "banned", "loop"], "R": [OTuple(A1="loop", A2="loop")]},
        )
        out = evaluate(program, inp)
        assert out.relations["Out"] == {"a"}

    def test_deref_heads_and_invention(self):
        source = """
        schema {
          relation Src: [A1: D, A2: D];
          relation Grp: [A1: D, A2: Bag];
          relation Dst: [A1: D, A2: {D}];
          class Bag: {D};
        }
        input Src
        output Dst
        rules {
          Grp(x, z) :- Src(x, y).
          z^(y) :- Src(x, y), Grp(x, z).
          ;
          Dst(x, z^) :- Grp(x, z).
        }
        """
        program = typecheck_program(program_from_source(source))
        inp = Instance(
            program.input_schema,
            relations={
                "Src": [OTuple(A1="k", A2="v1"), OTuple(A1="k", A2="v2")],
            },
        )
        out = evaluate(program, inp)
        (row,) = out.relations["Dst"]
        assert set(row["A2"]) == {"v1", "v2"}

    def test_delete_and_choose_keywords(self):
        source = """
        schema { relation S: D; relation Keep: D; }
        input S, Keep
        output Keep
        rules {
          delete Keep(x) :- Keep(x), not S(x).
        }
        """
        program = program_from_source(source)
        assert program.uses_deletion()

    def test_inference_types_the_powerset_program(self):
        # Pow(X) ← X = X needs no declaration: the head atom types X as {D}.
        source = """
        schema { relation Pow: {D}; relation S: D; }
        input S
        output Pow
        rules { Pow(X) :- X = X. }
        """
        program = typecheck_program(program_from_source(source))
        inp = Instance(program.input_schema, relations={"S": ["a"]})
        assert len(evaluate(program, inp).relations["Pow"]) == 2

    def test_inference_failure_is_reported(self):
        # y and z touch no atom and no typed side: uninferable.
        source = """
        schema { relation S: D; relation S2: D; }
        input S
        output S2
        rules { S2(x) :- S(x), y = z. }
        """
        with pytest.raises(ParseError, match="var"):
            program_from_source(source)

    def test_constants_in_rules(self):
        source = """
        schema { relation E: [A1: D, A2: D]; relation FromRoot: D; }
        input E
        output FromRoot
        rules { FromRoot(y) :- E("root", y). }
        """
        program = typecheck_program(program_from_source(source))
        inp = Instance(
            program.input_schema,
            relations={"E": [OTuple(A1="root", A2="a"), OTuple(A1="b", A2="c")]},
        )
        out = evaluate(program, inp)
        assert out.relations["FromRoot"] == {"a"}

    def test_empty_rules_rejected(self):
        with pytest.raises(ParseError):
            program_from_source("schema { relation S: D; } rules { }")
