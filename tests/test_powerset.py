"""E4 — Example 3.4.2: the two powerset programs."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iql import classify, evaluate, evaluate_full, typecheck_program
from repro.transform import (
    decode_powerset,
    powerset_input,
    powerset_restricted_program,
    powerset_unrestricted_program,
)


def true_powerset(elements):
    return frozenset(
        frozenset(c) for k in range(len(elements) + 1) for c in combinations(elements, k)
    )


class TestUnrestricted:
    def test_computes_powerset(self):
        out = evaluate(
            typecheck_program(powerset_unrestricted_program()),
            powerset_input(["a", "b", "c"]),
        )
        assert decode_powerset(out) == true_powerset(["a", "b", "c"])

    def test_not_even_ptime_restricted(self):
        report = classify(powerset_unrestricted_program())
        assert not report.is_iql_pr
        assert not report.is_iql_rr
        assert "X" in report.stages[0].offending_vars

    def test_empty_input_yields_only_empty_set(self):
        out = evaluate(powerset_unrestricted_program(), powerset_input([]))
        assert decode_powerset(out) == frozenset({frozenset()})


class TestRestricted:
    def test_computes_powerset(self):
        out = evaluate(
            typecheck_program(powerset_restricted_program()),
            powerset_input(["a", "b", "c"]),
        )
        assert decode_powerset(out) == true_powerset(["a", "b", "c"])

    def test_range_restricted_but_not_recursion_free(self):
        # Range-restricted, yes — but invention sits in a loop through the
        # class P, so the program is NOT IQLrr (and indeed it can be made
        # to run exponentially long; the paper uses it to motivate the
        # recursion-freedom condition).
        report = classify(powerset_restricted_program())
        stage = report.stages[0]
        assert stage.range_restricted
        assert not stage.recursion_free
        assert not stage.invention_free
        assert not report.is_iql_rr

    def test_invents_one_oid_per_subset_pair(self):
        result = evaluate_full(
            powerset_restricted_program(), powerset_input(["a", "b"])
        )
        # Subsets appear over several rounds; each (X, Y) pair of *derived*
        # subsets triggers exactly one invention. With n=2 the fixpoint has
        # 4 subsets, so at most 16 inventions; blocking keeps it exact.
        assert len(decode_powerset(result.output)) == 4
        assert result.stats.oids_invented == 16

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 3))
    def test_agrees_with_itertools(self, n):
        elements = [f"e{i}" for i in range(n)]
        out = evaluate(powerset_restricted_program(), powerset_input(elements))
        assert decode_powerset(out) == true_powerset(elements)


class TestGrowthShape:
    def test_exponential_output(self):
        # |R1| = 2^|R| — the exponentiality claim of Section 3.4.
        for n in range(5):
            elements = [f"e{i}" for i in range(n)]
            out = evaluate(powerset_unrestricted_program(), powerset_input(elements))
            assert len(decode_powerset(out)) == 2 ** n
