"""E7 — Figure 1 / Theorems 4.3.1 and 4.4.1: the quadrangle query.

Plain IQL produces O-isomorphic *copies* of the quadrangle; selecting one
is inexpressible (Theorem 4.3.1); IQL+ ``choose`` completes the query
(Theorem 4.4.1). These tests run all three facets.
"""

import pytest

from repro.errors import GenericityError
from repro.iql import Evaluator, evaluate, typecheck_program
from repro.schema import are_o_isomorphic, automorphisms
from repro.transform import (
    copies_in_output,
    quadrangle_choose_program,
    quadrangle_copies_program,
    quadrangle_expected_output,
    quadrangle_input,
)


class TestCopies:
    def setup_method(self):
        self.program = typecheck_program(quadrangle_copies_program())
        self.output = evaluate(self.program, quadrangle_input("a", "b"))

    def test_two_copies(self):
        assert copies_in_output(self.output) == 2
        assert len(self.output.classes["P_cand"]) == 8
        assert len(self.output.relations["R_copy"]) == 16

    def test_copies_are_swappable(self):
        # The instance must admit an automorphism exchanging the markers —
        # the indistinguishability that makes choose generic. (This is the
        # O-automorphism analogue of h0 from Claim 4.3.2.)
        markers = sorted(self.output.classes["P_mark"])
        swaps = [
            auto
            for auto in automorphisms(self.output)
            if auto.get(markers[0]) == markers[1]
        ]
        assert swaps

    def test_each_copy_is_the_quadrangle(self):
        by_marker = {}
        for row in self.output.relations["R_copy"]:
            by_marker.setdefault(row["M"], set()).add((row["B"], row["C"]))
        for edges in by_marker.values():
            assert len(edges) == 8
            constants = {t for _, t in edges if isinstance(t, str)}
            assert constants == {"a", "b"}


class TestChoose:
    def test_matches_figure_1(self):
        program = typecheck_program(quadrangle_choose_program())
        output = evaluate(program, quadrangle_input("a", "b"))
        expected = quadrangle_expected_output("a", "b")
        assert are_o_isomorphic(output, expected)

    def test_choose_is_deterministic_up_to_isomorphism(self):
        program = quadrangle_choose_program()
        a = evaluate(program, quadrangle_input("a", "b"))
        b = evaluate(program, quadrangle_input("a", "b"))
        assert are_o_isomorphic(a, b)

    def test_trusted_mode_agrees_with_verify(self):
        program = quadrangle_choose_program()
        verified = Evaluator(program, choose_mode="verify").run(
            quadrangle_input("a", "b")
        ).output
        trusted = Evaluator(program, choose_mode="trusted").run(
            quadrangle_input("a", "b")
        ).output
        assert are_o_isomorphic(verified, trusted)


class TestGenericityGuard:
    def test_choose_over_distinguishable_candidates_fails(self):
        """Break the symmetry: drop the rotation-closure rule so the staging
        rows distinguish the copies; the genericity check must reject the
        choose."""
        from repro.iql import Program

        program = quadrangle_choose_program()
        stages = [
            [rule for rule in stage if rule.label != "rotate"]
            for stage in program.stages
        ]
        asymmetric = Program(
            program.schema,
            stages=stages,
            input_names=program.input_names,
            output_names=program.output_names,
        )
        with pytest.raises(GenericityError):
            evaluate(asymmetric, quadrangle_input("a", "b"))

    def test_choose_over_empty_class_fails(self):
        # With a singleton input the ≠ guard never fires: no copies exist.
        program = quadrangle_choose_program()
        with pytest.raises(GenericityError):
            evaluate(program, quadrangle_input("a", "a"))
