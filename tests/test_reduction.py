"""Tests for intersection reduction/elimination (Propositions 2.2.1, 6.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.typesys import (
    D,
    EMPTY,
    Empty,
    classref,
    equivalent_on_samples,
    intersection,
    intersection_free,
    intersection_reduced,
    set_of,
    tuple_of,
    union,
)
from repro.values import Oid

P1, P2 = classref("P1"), classref("P2")


def make_pi():
    return {"P1": {Oid(), Oid()}, "P2": {Oid()}}


class TestPaperExamples:
    """The three examples following Proposition 2.2.1, verbatim."""

    def test_tuple_intersection_pushes_inward(self):
        t = intersection(tuple_of(A1=D, A2=set_of(P1)), tuple_of(A1=D, A2=set_of(P2)))
        reduced = intersection_reduced(t)
        assert reduced == tuple_of(A1=D, A2=set_of(intersection(P1, P2)))
        # Over disjoint assignments it collapses to [A1: D, A2: {⊥}].
        assert intersection_free(t) == tuple_of(A1=D, A2=set_of(EMPTY))

    def test_mixed_intersection(self):
        t = intersection(union(set_of(D), P1), P2)
        # Over all π: ({D} ∨ P1) ∧ P2 ≡ P1 ∧ P2 (a set is never an oid).
        assert intersection_reduced(t) == intersection(P1, P2)
        # Over disjoint π it is ⊥.
        assert isinstance(intersection_free(t), Empty)

    def test_tuple_with_bottom_component_is_bottom(self):
        assert intersection_reduced(tuple_of(A1=EMPTY)) == EMPTY
        # ... but {⊥} is not ⊥.
        assert intersection_reduced(set_of(EMPTY)) == set_of(EMPTY)


class TestAlgebra:
    def test_same_class_intersection(self):
        assert intersection_free(intersection(P1, P1)) == P1

    def test_d_with_class_is_empty_always(self):
        assert intersection_reduced(intersection(D, P1)) == EMPTY

    def test_constructor_clash_is_empty(self):
        assert intersection_reduced(intersection(set_of(D), tuple_of(a=D))) == EMPTY
        assert intersection_reduced(intersection(set_of(D), D)) == EMPTY

    def test_distribution_over_union(self):
        t = intersection(union(P1, P2), P1)
        assert intersection_free(t) == P1

    def test_mismatched_tuple_attrs_plain_vs_star(self):
        a, b = tuple_of(A1=D, A2=D), tuple_of(A2=D, A3=D)
        assert intersection_reduced(intersection(a, b)) == EMPTY
        # The Section 6 motivating example: merged under *.
        assert intersection_reduced(intersection(a, b), star=True) == tuple_of(
            A1=D, A2=D, A3=D
        )

    def test_set_intersection_pushes_inward(self):
        t = intersection(set_of(P1), set_of(P2))
        assert intersection_reduced(t) == set_of(intersection(P1, P2))

    def test_results_are_intersection_reduced_and_free(self):
        t = intersection(
            union(tuple_of(a=P1), tuple_of(a=P2)), tuple_of(a=union(P1, P2))
        )
        assert intersection_reduced(t).is_intersection_reduced()
        assert intersection_free(t).is_intersection_free()


# -- property tests: reduction preserves the interpretation -----------------------

atoms = st.sampled_from([D, EMPTY, P1, P2])


def types(max_depth=3):
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            children.map(set_of),
            st.dictionaries(st.sampled_from(["A", "B"]), children, min_size=1, max_size=2).map(
                tuple_of
            ),
            st.tuples(children, children).map(lambda ab: union(*ab)),
            st.tuples(children, children).map(lambda ab: intersection(*ab)),
        ),
        max_leaves=6,
    )


@settings(max_examples=60, deadline=None)
@given(types())
def test_intersection_reduced_preserves_interpretation(t):
    pi = make_pi()
    reduced = intersection_reduced(t)
    assert reduced.is_intersection_reduced()
    assert equivalent_on_samples(t, reduced, pi)


@settings(max_examples=60, deadline=None)
@given(types())
def test_intersection_free_preserves_interpretation_over_disjoint(t):
    pi = make_pi()  # disjoint by construction
    freed = intersection_free(t)
    assert freed.is_intersection_free()
    assert equivalent_on_samples(t, freed, pi)


@settings(max_examples=40, deadline=None)
@given(types())
def test_star_reduction_preserves_star_interpretation(t):
    pi = make_pi()
    reduced = intersection_reduced(t, star=True)
    assert equivalent_on_samples(t, reduced, pi, star=True)
