"""Tests for schemas (Definition 2.3.1) and projections."""

import pytest

from repro.errors import SchemaError
from repro.schema import Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.iql import columns


class TestWellFormedness:
    def test_basic_schema(self):
        s = Schema(
            relations={"R": columns(D, D)},
            classes={"P": tuple_of(a=D, b=set_of(classref("P")))},
        )
        assert s.is_relation("R") and s.is_class("P")
        assert s.type_of("R") == columns(D, D)

    def test_types_may_reference_classes_not_relations(self):
        with pytest.raises(SchemaError):
            Schema(relations={"R": classref("Missing")})

    def test_cyclic_class_types_allowed(self):
        # Example 1.1's 1st-generation references itself.
        s = Schema(classes={"P": tuple_of(spouse=classref("P"))})
        assert s.is_set_valued_class("P") is False

    def test_set_valued_class_detection(self):
        s = Schema(classes={"P": set_of(D), "Q": tuple_of()})
        assert s.is_set_valued_class("P")
        assert not s.is_set_valued_class("Q")

    def test_relation_class_name_clash_rejected(self):
        with pytest.raises(SchemaError):
            Schema(relations={"X": D}, classes={"X": D})

    def test_unknown_lookup(self):
        with pytest.raises(SchemaError):
            Schema().type_of("nope")


class TestProjectionAndMerge:
    def setup_method(self):
        self.s = Schema(
            relations={"R": columns(D, D), "S": classref("P")},
            classes={"P": tuple_of(a=D)},
        )

    def test_project(self):
        p = self.s.project(["R"])
        assert set(p.relations) == {"R"} and not p.classes
        assert p.is_projection_of(self.s)

    def test_project_must_keep_referenced_classes(self):
        with pytest.raises(SchemaError):
            self.s.project(["S"])  # S's type references P
        ok = self.s.project(["S", "P"])
        assert ok.is_projection_of(self.s)

    def test_project_unknown_name(self):
        with pytest.raises(SchemaError):
            self.s.project(["Z"])

    def test_with_names_conflict(self):
        with pytest.raises(SchemaError):
            self.s.with_names(relations={"R": D})
        extended = self.s.with_names(relations={"R2": D})
        assert extended.is_relation("R2")
        assert self.s.is_projection_of(extended)

    def test_merge(self):
        other = Schema(relations={"Q": D})
        merged = self.s.merge(other)
        assert merged.is_relation("Q") and merged.is_class("P")

    def test_equality_and_hash(self):
        again = Schema(
            relations={"S": classref("P"), "R": columns(D, D)},
            classes={"P": tuple_of(a=D)},
        )
        assert again == self.s
        assert hash(again) == hash(self.s)

    def test_repr_smoke(self):
        assert "relation" in repr(self.s) and "class" in repr(self.s)
