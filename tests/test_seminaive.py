"""Tests for the semi-naive optimization (repro.iql.seminaive).

The naive inflationary evaluator is the specification; the delta rewriting
must agree with it exactly on every eligible stage, and must stand aside
on anything beyond positive Datalog.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    database_to_instance,
    datalog_to_iql,
    instance_to_database,
    same_generation_program,
    transitive_closure_program,
)
from repro.iql import Choose, Evaluator, Membership, NameTerm, Program, Rule, Var, atom, columns
from repro.iql.seminaive import stage_eligible
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.workloads import parent_forest, path_graph, random_graph, transitive_closure


def run_both(program, instance):
    semi = Evaluator(program, seminaive=True).run(instance.copy()).output
    naive = Evaluator(program, seminaive=False).run(instance.copy()).output
    return semi, naive


class TestEquivalence:
    def test_tc_path(self):
        dprog = transitive_closure_program()
        program = datalog_to_iql(dprog)
        edges = path_graph(10)
        instance = database_to_instance(dprog, {"E": set(edges)}, names=dprog.edb)
        semi, naive = run_both(program, instance)
        assert instance_to_database(semi) == instance_to_database(naive)
        assert instance_to_database(semi)["T"] == transitive_closure(edges)

    def test_same_generation(self):
        dprog = same_generation_program()
        program = datalog_to_iql(dprog)
        parents, persons = parent_forest(2, 3)
        edb = {"Par": set(parents), "Person": {(p,) for p in persons}}
        instance = database_to_instance(dprog, edb, names=dprog.edb)
        semi, naive = run_both(program, instance)
        assert instance_to_database(semi) == instance_to_database(naive)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 10), st.integers(0, 500))
    def test_random_graphs(self, n, seed):
        dprog = transitive_closure_program()
        program = datalog_to_iql(dprog)
        edges = random_graph(n, average_degree=1.7, seed=seed)
        instance = database_to_instance(dprog, {"E": set(edges)}, names=dprog.edb)
        semi, naive = run_both(program, instance)
        assert instance_to_database(semi) == instance_to_database(naive)

    def test_stats_reflect_rounds(self):
        dprog = transitive_closure_program()
        program = datalog_to_iql(dprog)
        edges = path_graph(6)
        instance = database_to_instance(dprog, {"E": set(edges)}, names=dprog.edb)
        result = Evaluator(program, seminaive=True).run(instance)
        assert result.stats.per_stage_steps and result.stats.per_stage_steps[0] >= 2
        assert result.stats.facts_added == len(transitive_closure(edges))


class TestEligibility:
    @pytest.fixture
    def schema(self):
        return Schema(
            relations={"R": columns(D, D), "S": D},
            classes={"P": tuple_of(a=D), "Q": set_of(D)},
        )

    def make(self, schema, rules):
        return Instance(schema), rules

    def test_positive_datalog_is_eligible(self, schema):
        x, y = Var("x", D), Var("y", D)
        inst, rules = self.make(
            schema, [Rule(atom(schema, "S", x), [atom(schema, "R", x, y)])]
        )
        assert stage_eligible(rules, inst)

    def test_fully_bound_negation_is_eligible(self, schema):
        # Negative literals whose variables the positive memberships bind
        # are admitted: within a relations-only stage they can only become
        # falser, so the delta rewriting stays sound.
        x, y = Var("x", D), Var("y", D)
        inst, rules = self.make(
            schema,
            [
                Rule(
                    atom(schema, "S", x),
                    [atom(schema, "R", x, y), atom(schema, "S", y, positive=False)],
                )
            ],
        )
        assert stage_eligible(rules, inst)

    def test_uncovered_negation_is_not(self, schema):
        # ¬R(x, z) with z bound by nothing: the enumeration fallback would
        # range over constants(I), which grows with ρ — ineligible.
        x, z = Var("x", D), Var("z", D)
        inst, rules = self.make(
            schema,
            [
                Rule(
                    atom(schema, "S", x),
                    [atom(schema, "S", x), atom(schema, "R", x, z, positive=False)],
                )
            ],
        )
        assert not stage_eligible(rules, inst)

    def test_invention_is_not(self, schema):
        x = Var("x", D)
        p = Var("p", classref("P"))
        extended = schema.with_names(relations={"RP": columns(D, classref("P"))})
        inst = Instance(extended)
        rules = [Rule(atom(extended, "RP", x, p), [atom(extended, "S", x)])]
        assert not stage_eligible(rules, inst)

    def test_class_atoms_are_not(self, schema):
        p = Var("p", classref("P"))
        inst, rules = self.make(
            schema,
            [Rule(atom(schema, "P", p), [atom(schema, "P", p)])],
        )
        assert not stage_eligible(rules, inst)

    def test_deref_heads_are_not(self, schema):
        q = Var("q", classref("Q"))
        x = Var("x", D)
        inst, rules = self.make(
            schema,
            [Rule(Membership(q.hat(), x), [atom(schema, "S", x)])],
        )
        assert not stage_eligible(rules, inst)

    def test_choose_and_delete_are_not(self, schema):
        x = Var("x", D)
        inst, rules = self.make(
            schema, [Rule(atom(schema, "S", x), [Choose(), atom(schema, "S", x)])]
        )
        assert not stage_eligible(rules, inst)
        inst, rules = self.make(
            schema, [Rule(atom(schema, "S", x), [atom(schema, "S", x)], delete=True)]
        )
        assert not stage_eligible(rules, inst)

    def test_unconditional_facts_are_not(self, schema):
        from repro.iql import SetTerm

        pow_schema = Schema(relations={"R1": set_of(D)})
        inst = Instance(pow_schema)
        rules = [Rule(Membership(NameTerm("R1"), SetTerm()), [])]
        assert not stage_eligible(rules, inst)

    def test_negation_stage_still_evaluates_correctly(self, schema):
        # Covered negation now runs through the delta rewriting; the
        # result must match the naive loop (the specification) exactly.
        x, y = Var("x", D), Var("y", D)
        program = Program(
            schema,
            rules=[
                Rule(
                    atom(schema, "S", x),
                    [atom(schema, "R", x, y), atom(schema, "S", y, positive=False)],
                )
            ],
            input_names=["R", "S"],
            output_names=["S"],
        )
        from repro.values import OTuple

        inst = Instance(
            schema.project(["R", "S"]),
            relations={"R": [OTuple(A01="a", A02="b")]},
        )
        semi, naive = run_both(program, inst)
        assert semi.relations["S"] == naive.relations["S"] == {"a"}


class TestTraceDisablesSeminaive:
    def test_tracing_forces_naive(self):
        dprog = transitive_closure_program()
        program = datalog_to_iql(dprog)
        evaluator = Evaluator(program, trace=True, seminaive=True)
        assert evaluator.seminaive is False
