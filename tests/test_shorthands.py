"""Tests for the shorthand layer (Section 3.4's conventions)."""

import pytest

from repro.errors import TypeCheckError
from repro.iql import (
    Program,
    Rule,
    TupleTerm,
    Var,
    atom,
    columns,
    compose,
    make_vars,
    neg,
    positional_attrs,
)
from repro.schema import Schema
from repro.typesys import D, classref, set_of, tuple_of


@pytest.fixture
def schema():
    return Schema(
        relations={"R": columns(D, D), "S": D, "Wide": columns(*([D] * 12))},
        classes={"P": tuple_of(a=D)},
    )


class TestPositionalAttrs:
    def test_sorted_order_is_positional_order(self):
        attrs = positional_attrs(12)
        assert list(attrs) == sorted(attrs)
        assert attrs[0] == "A01" and attrs[11] == "A12"

    def test_columns(self):
        t = columns(D, classref("P"))
        assert t.attributes == ("A01", "A02")

    def test_wide_relations_stay_ordered(self, schema):
        args = make_vars(D, *[f"x{i}" for i in range(12)])
        literal = atom(schema, "Wide", *args)
        element = literal.element
        assert [v.name for _, v in element.fields] == [f"x{i}" for i in range(12)]


class TestAtom:
    def test_positional_tuple(self, schema):
        x, y = make_vars(D, "x", "y")
        literal = atom(schema, "R", x, y)
        assert isinstance(literal.element, TupleTerm)
        assert literal.element.fields[0] == ("A01", x)

    def test_scalar_relation(self, schema):
        (x,) = make_vars(D, "x")
        literal = atom(schema, "S", x)
        assert literal.element is x

    def test_class_atom(self, schema):
        p = Var("p", classref("P"))
        literal = atom(schema, "P", p)
        assert literal.container.name == "P"

    def test_class_atom_arity(self, schema):
        with pytest.raises(TypeCheckError):
            atom(schema, "P", Var("p", classref("P")), Var("q", classref("P")))

    def test_constants_coerce(self, schema):
        literal = atom(schema, "R", "a", "b")
        assert repr(literal.element) == "[A01: 'a', A02: 'b']"

    def test_wrong_arity(self, schema):
        with pytest.raises(TypeCheckError):
            atom(schema, "R", *make_vars(D, "x", "y", "z"))  # 3 args, 2 cols
        with pytest.raises(TypeCheckError):
            atom(schema, "unknown", Var("x", D))

    def test_single_arg_is_whole_member(self, schema):
        # One argument against a tuple-typed relation denotes the member
        # itself (e.g. a tuple-typed variable); the type checker rules on it.
        whole = Var("t", columns(D, D))
        literal = atom(schema, "R", whole)
        assert literal.element is whole

    def test_neg(self, schema):
        literal = neg(schema, "S", Var("x", D))
        assert literal.negated


class TestCompose:
    def test_compose_merges_schemas_and_stages(self, schema):
        x = Var("x", D)
        g1 = Program(
            schema,
            rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)])],
            input_names=["S"],
            output_names=["S"],
        )
        combined = compose(g1, g1, g1)
        assert len(combined.stages) == 3

    def test_compose_requires_a_program(self):
        with pytest.raises(TypeCheckError):
            compose()

    def test_conflicting_schemas_rejected(self, schema):
        other = Schema(relations={"S": set_of(D)})
        x = Var("x", D)
        g1 = Program(
            schema,
            rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)])],
            input_names=["S"],
            output_names=["S"],
        )
        X = Var("X", set_of(D))
        g2 = Program(
            other,
            rules=[Rule(atom(other, "S", X), [atom(other, "S", X)])],
            input_names=["S"],
            output_names=["S"],
        )
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            compose(g1, g2)


class TestProgramConstruction:
    def test_needs_rules_or_stages(self, schema):
        with pytest.raises(TypeCheckError):
            Program(schema)
        x = Var("x", D)
        rule = Rule(atom(schema, "S", x), [atom(schema, "S", x)])
        with pytest.raises(TypeCheckError):
            Program(schema, rules=[rule], stages=[[rule]])

    def test_empty_stage_rejected(self, schema):
        x = Var("x", D)
        rule = Rule(atom(schema, "S", x), [atom(schema, "S", x)])
        with pytest.raises(TypeCheckError):
            Program(schema, stages=[[rule], []])

    def test_disjoint_io_detection(self, schema):
        x, y = make_vars(D, "x", "y")
        rule = Rule(atom(schema, "S", x), [atom(schema, "R", x, y)])
        dio = Program(schema, rules=[rule], input_names=["R"], output_names=["S"])
        assert dio.has_disjoint_io()
        overlapping = Program(
            schema, rules=[rule], input_names=["R", "S"], output_names=["S"]
        )
        assert not overlapping.has_disjoint_io()
