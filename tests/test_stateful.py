"""Stateful property testing: random mutation sequences on an instance.

A hypothesis rule-based machine performs arbitrary interleavings of the
instance's mutation primitives (the same ones the evaluator uses) and
checks the standing invariants after every step:

* classes remain pairwise disjoint,
* the instance remains legal for its schema,
* set values only grow; assigned scalar values never change through
  `add_set_element`,
* `ground_facts` and `fact_count` stay consistent,
* `copy()` produces an equal but independent instance.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.errors import InstanceError
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple

SCHEMA = Schema(
    relations={
        "Flat": tuple_of(a=D, b=D),
        "Refs": tuple_of(who=classref("Person")),
    },
    classes={
        "Person": tuple_of(name=D, friends=set_of(classref("Person"))),
        "Tags": set_of(D),
    },
)

CONSTANTS = ["a", "b", "c", "d"]


class InstanceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.instance = Instance(SCHEMA)
        self.persons = []
        self.tag_sets = []

    # -- mutations ----------------------------------------------------------

    @rule(a=st.sampled_from(CONSTANTS), b=st.sampled_from(CONSTANTS))
    def add_flat_row(self, a, b):
        before = len(self.instance.relations["Flat"])
        added = self.instance.add_relation_member("Flat", OTuple(a=a, b=b))
        after = len(self.instance.relations["Flat"])
        assert after == before + (1 if added else 0)

    @rule()
    def add_person(self):
        oid = Oid("sm_p")
        assert self.instance.add_class_member("Person", oid)
        self.persons.append(oid)

    @rule()
    def add_tag_set(self):
        oid = Oid("sm_t")
        assert self.instance.add_class_member("Tags", oid)
        self.tag_sets.append(oid)
        # Set-valued oids are born with the empty set (Condition (3)).
        assert self.instance.value_of(oid) == OSet()

    @rule(data=st.data())
    def assign_person_value(self, data):
        if not self.persons:
            return
        oid = data.draw(st.sampled_from(self.persons))
        friends = data.draw(st.sets(st.sampled_from(self.persons), max_size=3))
        name = data.draw(st.sampled_from(CONSTANTS))
        self.instance.assign(oid, OTuple(name=name, friends=OSet(friends)))

    @rule(data=st.data(), tag=st.sampled_from(CONSTANTS))
    def grow_tag_set(self, data, tag):
        if not self.tag_sets:
            return
        oid = data.draw(st.sampled_from(self.tag_sets))
        before = self.instance.value_of(oid)
        self.instance.add_set_element(oid, tag)
        after = self.instance.value_of(oid)
        assert set(before) <= set(after) and tag in after

    @rule(data=st.data())
    def add_ref_row(self, data):
        if not self.persons:
            return
        oid = data.draw(st.sampled_from(self.persons))
        self.instance.add_relation_member("Refs", OTuple(who=oid))

    @rule()
    def cross_class_insert_is_rejected(self):
        if not self.persons:
            return
        with_tag = self.persons[0]
        try:
            self.instance.add_class_member("Tags", with_tag)
            raise AssertionError("disjointness violation was accepted")
        except InstanceError:
            pass

    # -- invariants ----------------------------------------------------------

    @invariant()
    def classes_disjoint(self):
        if not hasattr(self, "instance"):
            return
        seen = set()
        for oids in self.instance.classes.values():
            assert not (seen & oids)
            seen |= oids

    @invariant()
    def instance_is_legal(self):
        if not hasattr(self, "instance"):
            return
        self.instance.validate()

    @invariant()
    def fact_count_consistent(self):
        if not hasattr(self, "instance"):
            return
        assert self.instance.fact_count() == len(self.instance.ground_facts())

    @invariant()
    def copy_is_equal_and_independent(self):
        if not hasattr(self, "instance"):
            return
        clone = self.instance.copy()
        assert clone == self.instance
        clone.add_relation_member("Flat", OTuple(a="zz", b="zz"))
        assert OTuple(a="zz", b="zz") not in self.instance.relations["Flat"]


TestInstanceMachine = InstanceMachine.TestCase
TestInstanceMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
