"""Tests for cardinality statistics and adaptive planning (repro.iql.stats)."""

import random

import pytest

from repro import io
from repro.iql import (
    Evaluator,
    Statistics,
    atom,
    check_drift,
    columns,
    describe_plan,
    make_vars,
    plan_body,
)
from repro.iql.stats import MAX_REPLANS
from repro.parser.grammar import program_from_source
from repro.schema import Instance, Schema
from repro.typesys import D, set_of, tuple_of
from repro.values import Oid, OSet, OTuple


def skew_schema():
    return Schema(
        relations={
            "A": columns(D),
            "B": columns(D, D),
            "C": columns(D),
        }
    )


def skew_instance(schema, b_rows=200, skew=10, selective=50):
    """The E21 shape: B.A01 collides onto A's values, B.A02 is unique."""
    instance = Instance(schema)
    for i in range(skew):
        instance.add_relation_member("A", OTuple(A01=f"s{i}"))
    for i in range(b_rows):
        instance.add_relation_member(
            "B", OTuple(A01=f"s{i % skew}", A02=f"v{i}")
        )
    for j in range(selective):
        instance.add_relation_member("C", OTuple(A01=f"v{j}"))
    return instance


class TestStatistics:
    def test_sizes(self):
        schema = skew_schema()
        instance = skew_instance(schema, b_rows=30)
        stats = Statistics(instance)
        assert stats.relation_size("B") == 30
        assert stats.relation_size("A") == 10
        assert stats.class_size("NoSuchClass") == 0

    def test_ndv_reads_the_projection_index(self):
        instance = skew_instance(skew_schema(), b_rows=40, skew=10)
        stats = Statistics(instance)
        assert stats.ndv("B", "A01") == 10
        assert stats.ndv("B", "A02") == 40
        assert stats.ndv("A", "A01") == 10

    def test_ndv_stays_warm_under_mutation(self):
        """The statistic is the incrementally-maintained index: after any
        interleaving of inserts and removals it matches a cold rebuild."""
        schema = skew_schema()
        instance = skew_instance(schema, b_rows=24, skew=4)
        stats = Statistics(instance)
        assert stats.ndv("B", "A01") == 4  # force the index to exist
        rng = random.Random(7)
        pool = list(instance.relations["B"])
        for step in range(60):
            if rng.random() < 0.5 and pool:
                victim = pool.pop(rng.randrange(len(pool)))
                instance.remove_relation_member("B", victim)
            else:
                row = OTuple(A01=f"s{rng.randrange(6)}", A02=f"w{step}")
                if instance.add_relation_member("B", row):
                    pool.append(row)
            expected = {t["A01"] for t in instance.relations["B"]}
            assert stats.ndv("B", "A01") == len(expected)
        assert instance.indexes.equals_rebuild()

    def test_bucket_estimate_uses_the_best_probed_attribute(self):
        instance = skew_instance(skew_schema(), b_rows=200, skew=10)
        stats = Statistics(instance)
        work_skew, fan_skew = stats.bucket_estimate("B", ("A01",))
        work_both, fan_both = stats.bucket_estimate("B", ("A01", "A02"))
        assert work_skew == pytest.approx(20.0)  # 200 / NDV 10
        assert work_both == pytest.approx(1.0)  # 200 / NDV 200
        assert fan_both < fan_skew < 200.0

    def test_bucket_estimate_empty_relation(self):
        instance = Instance(skew_schema())
        assert Statistics(instance).bucket_estimate("B", ("A01",)) == (0.0, 0.0)

    def test_deref_width(self):
        schema = Schema(classes={"Q": set_of(D)})
        a, b, c = Oid("a"), Oid("b"), Oid("c")
        instance = Instance(
            schema,
            classes={"Q": [a, b, c]},
            nu={a: OSet(["x", "y", "z"]), b: OSet(["x"])},
        )
        stats = Statistics(instance)
        assert stats.deref_width("Q") == pytest.approx(2.0)  # mean of 3 and 1
        assert stats.deref_width("NoMembers") == 8.0  # the documented default


class TestCostedPlans:
    def body(self, schema):
        x, y = make_vars(D, "x", "y")
        return (
            atom(schema, "A", x),
            atom(schema, "B", x, y),
            atom(schema, "C", y),
        )

    def test_static_plan_probes_the_skewed_attribute(self):
        schema = skew_schema()
        instance = skew_instance(schema)
        plan = plan_body(self.body(schema), frozenset(), instance, costed=False)
        kinds = [(step[0], step[1].container.name) for step in plan]
        assert kinds == [("member", "A"), ("member", "B"), ("filter", "C")]
        assert plan.estimates is None

    def test_costed_plan_joins_the_selective_relation_first(self):
        schema = skew_schema()
        # Big enough that the B probe's skew bucket (|B|/10 = 200) dwarfs
        # the 50-row C scan; at small |B| both planners agree B-first.
        instance = skew_instance(schema, b_rows=2000)
        plan = plan_body(self.body(schema), frozenset(), instance, costed=True)
        kinds = [(step[0], step[1].container.name) for step in plan]
        assert kinds == [("member", "A"), ("member", "C"), ("filter", "B")]
        assert plan.estimates is not None and len(plan.estimates) == 3
        assert plan.counts == [0, 0, 0, 0]

    def test_observed_fanouts_override_the_model(self):
        """Feedback saying 'the C scan explodes' pushes C behind B again."""
        schema = skew_schema()
        instance = skew_instance(schema)
        literals = self.body(schema)
        scan_c = literals[2]
        observed = {(scan_c, frozenset(literals[0].variables())): 1e6}
        plan = plan_body(
            self.body(schema),
            frozenset(),
            instance,
            costed=True,
            observed=observed,
            replans=1,
        )
        names = [step[1].container.name for step in plan]
        assert names.index("C") > names.index("B")
        assert plan.replans == 1

    def test_describe_plan_renders_estimates(self):
        schema = skew_schema()
        instance = skew_instance(schema)
        plan = plan_body(self.body(schema), frozenset(), instance, costed=True)
        lines = describe_plan(plan)
        assert len(lines) == 3
        assert any("scan" in line for line in lines)
        assert all("est" in line for line in lines)


TC_PROGRAM = """
schema {
  relation E: [A1: D, A2: D];
  relation T: [A1: D, A2: D];
}
var x, y, z: D
input E
output T
rules {
  T(x, y) :- E(x, y).
  T(x, z) :- T(x, y), E(y, z).
}
"""


def tc_instance(program, n=12):
    instance = Instance(program.input_schema)
    for i in range(n - 1):
        instance.add_relation_member("E", OTuple(A1=f"n{i}", A2=f"n{i + 1}"))
    return instance


class TestFeedbackLoop:
    def test_forced_replan_preserves_answers(self):
        """replan_ratio=1.0 treats every inexact estimate as drift, so the
        engine replans as hard as it can — and must change nothing."""
        program = program_from_source(TC_PROGRAM)
        instance = tc_instance(program)
        static = Evaluator(program, cost_planning=False).run(instance.copy())
        adaptive = Evaluator(program, replan_ratio=1.0).run(instance.copy())
        assert adaptive.output == static.output
        assert adaptive.stats.plan_replans >= 1
        assert adaptive.stats.estimate_drifts >= adaptive.stats.plan_replans

    def test_replans_are_capped(self):
        program = program_from_source(TC_PROGRAM)
        instance = tc_instance(program, n=24)
        result = Evaluator(program, replan_ratio=1.0).run(instance.copy())
        for rule in program.rules:
            feedback = rule._feedback_cache
            if feedback:
                for entry in feedback.values():
                    assert entry["replans"] <= MAX_REPLANS
        # one recursive rule drives the loop; the cap bounds total evictions
        assert result.stats.plan_replans <= MAX_REPLANS * 2 * len(program.rules)

    def test_drift_records_feedback_and_evicts(self):
        program = program_from_source(TC_PROGRAM)
        instance = tc_instance(program)
        Evaluator(program, replan_ratio=1.0).run(instance.copy())
        drifted = [r for r in program.rules if r._feedback_cache]
        assert drifted
        for rule in drifted:
            for entry in rule._feedback_cache.values():
                assert entry["fanouts"]  # measured fan-outs, keyed for reuse
                assert entry["replans"] >= 1

    def test_compiled_adaptive_matches_static(self):
        program = program_from_source(TC_PROGRAM)
        instance = tc_instance(program)
        static = Evaluator(program, cost_planning=False).run(instance.copy())
        adaptive = Evaluator(program, compile=True, replan_ratio=1.0).run(
            instance.copy()
        )
        assert adaptive.output == static.output
        assert adaptive.stats.plan_replans >= 1

    def test_check_drift_without_counts_is_a_no_op(self):
        program = program_from_source(TC_PROGRAM)
        instance = tc_instance(program)
        result = Evaluator(program).run(instance.copy())
        # plans exist and are counted, but with the default 10x tolerance
        # this tiny chain produces no actionable drift a second time around
        before = result.stats.plan_replans
        evicted = check_drift(program.rules, result.stats, ratio=1e9)
        assert evicted == 0
        assert result.stats.plan_replans == before


SKEW_PROGRAM = """
schema {
  relation A: [A1: D];
  relation B: [A1: D, A2: D];
  relation C: [A1: D];
  relation J: [A1: D, A2: D];
}
var x, y: D
input A, B, C
output J
rules {
  J(x, y) :- A(x), B(x, y), C(y).
}
"""


class TestCli:
    @pytest.fixture
    def files(self, tmp_path):
        program = tmp_path / "skew.iql"
        program.write_text(SKEW_PROGRAM)
        instance = Instance(
            Schema(
                relations={
                    "A": tuple_of(A1=D),
                    "B": tuple_of(A1=D, A2=D),
                    "C": tuple_of(A1=D),
                }
            )
        )
        for i in range(4):
            instance.add_relation_member("A", OTuple(A1=f"s{i}"))
        for i in range(40):
            instance.add_relation_member("B", OTuple(A1=f"s{i % 4}", A2=f"v{i}"))
        for j in range(6):
            instance.add_relation_member("C", OTuple(A1=f"v{j}"))
        data = tmp_path / "in.json"
        data.write_text(io.dumps(instance))
        return program, data

    def test_run_stats_reports_planner_counters(self, files, capsys):
        from repro.__main__ import main

        program, data = files
        assert main(["run", str(program), "--input", str(data), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "plans costed         1" in err
        assert "plan replans" in err

    def test_run_static_plans_flag(self, files, capsys):
        from repro.__main__ import main

        program, data = files
        assert (
            main(
                [
                    "run",
                    str(program),
                    "--input",
                    str(data),
                    "--static-plans",
                    "--stats",
                ]
            )
            == 0
        )
        assert "plans costed         0" in capsys.readouterr().err

    def test_analyze_plans_renders_costed_plans(self, files, capsys):
        from repro.__main__ import main

        program, data = files
        assert main(["analyze", str(program), "--plans", "--input", str(data)]) == 0
        out = capsys.readouterr().out
        assert "J" in out
        assert "est" in out
        assert "scan" in out or "probe" in out

    def test_analyze_plans_without_input_uses_empty_instance(self, files, capsys):
        from repro.__main__ import main

        program, _ = files
        assert main(["analyze", str(program), "--plans"]) == 0
        assert "est" in capsys.readouterr().out
