"""E10/E15 — Section 5: sublanguage classification and its guarantees."""

import pytest

from repro.errors import SublanguageError
from repro.iql import (
    Choose,
    Equality,
    Membership,
    Program,
    Rule,
    SetTerm,
    TupleTerm,
    Var,
    atom,
    classify,
    columns,
    dependency_graph,
    find_cycle,
    find_invention_cycle,
    evaluate_full,
    is_invention_free,
    is_ptime_restricted,
    is_range_restricted,
    is_recursion_free,
    max_constructor_width,
    nest_program,
    ptime_restricted_vars,
    range_restricted_vars,
    require_iql_pr,
    require_iql_rr,
    unnest_program,
)
from repro.schema import Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.transform import (
    graph_to_class_program,
    powerset_restricted_program,
    powerset_unrestricted_program,
)
from repro.values import branching_factor


@pytest.fixture
def schema():
    return Schema(
        relations={"R": columns(D, D), "S": D, "RS": set_of(D)},
        classes={"P": tuple_of(a=D)},
    )


class TestVariableRestriction:
    def test_set_free_vars_are_ptime_restricted(self, schema):
        x = Var("x", D)
        rule = Rule(atom(schema, "S", x), [Equality(x, x)])
        assert is_ptime_restricted(rule)
        assert not is_range_restricted(rule)  # D vars are not free for rr

    def test_class_vars_are_range_restricted(self, schema):
        p = Var("p", classref("P"))
        rule = Rule(atom(schema, "P", p), [Equality(p, p)])
        assert is_range_restricted(rule)

    def test_propagation_through_membership(self, schema):
        # X is bound by RS(X): its variables become restricted, and then
        # X(y) restricts y.
        X, y = Var("X", set_of(D)), Var("y", D)
        rule = Rule(atom(schema, "S", y), [atom(schema, "RS", X), Membership(X, y)])
        assert is_range_restricted(rule)
        assert X in range_restricted_vars(rule)

    def test_unrestricted_set_var(self, schema):
        X = Var("X", set_of(D))
        rule = Rule(atom(schema, "RS", X), [Equality(X, X)])
        assert not is_ptime_restricted(rule)
        assert X not in ptime_restricted_vars(rule)

    def test_negative_literals_do_not_restrict(self, schema):
        X, y = Var("X", set_of(D)), Var("y", D)
        rule = Rule(
            atom(schema, "S", y),
            [atom(schema, "RS", X, positive=False), Membership(X, y)],
        )
        assert not is_range_restricted(rule)


class TestDependencyGraph:
    def test_nonrecursive_program(self, schema):
        x, y = Var("x", D), Var("y", D)
        rules = [Rule(atom(schema, "S", x), [atom(schema, "R", x, y)])]
        graph = dependency_graph(rules)
        assert "S" in graph["R"]
        assert is_recursion_free(rules)

    def test_recursive_relation(self, schema):
        x, y, z = Var("x", D), Var("y", D), Var("z", D)
        rules = [
            Rule(atom(schema, "R", x, z), [atom(schema, "R", x, y), atom(schema, "R", y, z)])
        ]
        assert not is_recursion_free(rules)

    def test_invention_target_edges(self, schema):
        # A rule inventing into P from a body that reads P is a cycle.
        rp_schema = schema.with_names(relations={"RP": columns(D, classref("P"))})
        x = Var("x", D)
        p, q = Var("p", classref("P")), Var("q", classref("P"))
        rules = [
            Rule(
                atom(rp_schema, "RP", x, q),
                [atom(rp_schema, "RP", x, p)],
            )
        ]
        assert not is_recursion_free(rules)
        assert not is_invention_free(rules)

    def test_deref_head_symbol(self, schema):
        q_schema = Schema(
            relations={"S": D}, classes={"Q": set_of(D)}
        )
        q = Var("q", classref("Q"))
        x = Var("x", D)
        rules = [
            Rule(Membership(q.hat(), x), [atom(q_schema, "Q", q), atom(q_schema, "S", x)])
        ]
        graph = dependency_graph(rules)
        # S feeds the *value plane* of Q, not its extent: value writes do
        # not create oids, so they must not count as invention recursion.
        assert "^Q" in graph["S"]
        assert "Q" not in graph["S"]
        assert is_recursion_free(rules)


class TestPaperPrograms:
    def test_graph_encoding_is_iqlrr(self):
        assert classify(graph_to_class_program()).is_iql_rr

    def test_nest_unnest_are_iqlrr(self):
        assert classify(nest_program("Src", "Dst", D, D)).is_iql_rr
        assert classify(unnest_program("Src", "Dst", D, D)).is_iql_rr

    def test_unrestricted_powerset_is_full_iql(self):
        report = classify(powerset_unrestricted_program())
        assert not report.is_iql_pr
        assert "no PTIME guarantee" in report.summary()

    def test_restricted_powerset_is_not_iqlrr_either(self):
        # Range-restricted but with invention in a loop (Section 5's point).
        report = classify(powerset_restricted_program())
        assert report.stages[0].range_restricted
        assert not report.is_iql_rr

    def test_require_helpers(self):
        require_iql_rr(graph_to_class_program())
        require_iql_pr(graph_to_class_program())
        with pytest.raises(SublanguageError):
            require_iql_rr(powerset_unrestricted_program())
        with pytest.raises(SublanguageError):
            require_iql_pr(powerset_unrestricted_program())


class TestBranchingFactorLemma:
    """Lemma 5.7: invention-free steps keep the branching factor bounded by
    max(m, n) — m the largest constructor in the program, n the input's."""

    def test_bound_holds_on_evaluation(self, tc_program, tc_schema):
        from tests.conftest import edge_instance
        from repro.workloads import path_graph

        inst = edge_instance(tc_schema, path_graph(6))
        n = max(
            (branching_factor(v) for vs in inst.relations.values() for v in vs),
            default=0,
        )
        m = max_constructor_width(tc_program)
        result = evaluate_full(tc_program, inst)
        out_branching = max(
            (branching_factor(v) for vs in result.full.relations.values() for v in vs),
            default=0,
        )
        assert out_branching <= max(m, n)

    def test_constructor_width(self, schema):
        x = Var("x", D)
        rule = Rule(
            atom(schema, "RS", SetTerm(x, Var("y", D), Var("z", D))),
            [atom(schema, "S", x), atom(schema, "S", Var("y", D)), atom(schema, "S", Var("z", D))],
        )
        program = Program(schema, rules=[rule], input_names=["S"], output_names=["RS"])
        assert max_constructor_width(program) == 3


class TestCycleWitnesses:
    """find_cycle / find_invention_cycle — the IQL301 machinery."""

    def test_find_cycle_none_on_dag(self):
        assert find_cycle({"a": {"b"}, "b": {"c"}, "c": set()}) is None

    def test_find_cycle_self_loop(self):
        cycle = find_cycle({"a": {"a"}})
        assert cycle == ["a", "a"]

    def test_find_cycle_longer_loop(self):
        cycle = find_cycle({"a": {"b"}, "b": {"c"}, "c": {"a"}})
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}

    def test_divergent_loop_is_witnessed(self, schema):
        # Section 5's R3(y, z) <- R3(x, y): fresh z every round, forever.
        rp_schema = Schema(
            relations={"R3": columns(classref("P"), classref("P"))},
            classes={"P": tuple_of()},
        )
        x, y, z = (Var(n, classref("P")) for n in "xyz")
        rules = [Rule(atom(rp_schema, "R3", y, z), [atom(rp_schema, "R3", x, y)])]
        cycle = find_invention_cycle(rules)
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_invention_free_recursion_is_not_witnessed(self, schema):
        # Transitive closure has a cycle in G but invents nothing.
        x, y, z = (Var(n, D) for n in "xyz")
        rules = [
            Rule(atom(schema, "R", x, z), [atom(schema, "R", x, y), atom(schema, "R", y, z)])
        ]
        assert find_invention_cycle(rules) is None

    def test_acyclic_invention_is_not_witnessed(self, schema):
        # Inventing into P from plain data is safe: no cycle through P.
        x = Var("x", D)
        p = Var("p", classref("P"))
        rp_schema = schema.with_names(relations={"RP": columns(D, classref("P"))})
        rules = [Rule(atom(rp_schema, "RP", x, p), [atom(rp_schema, "S", x)])]
        assert find_invention_cycle(rules) is None


class TestChooseEdgeCases:
    """choose switches head-only variables from invention to selection."""

    @pytest.fixture
    def p_schema(self):
        return Schema(
            relations={"S": D, "RP": columns(D, classref("P"))},
            classes={"P": tuple_of()},
        )

    def test_choose_rule_still_reports_head_only_vars(self, p_schema):
        x = Var("x", D)
        p = Var("p", classref("P"))
        rule = Rule(atom(p_schema, "RP", x, p), [atom(p_schema, "S", x), Choose()])
        assert rule.has_choose()
        assert p in rule.invention_variables()  # syntactically head-only...
        assert not rule.is_invention_free()  # ...so Definition 5.3 counts it

    def test_choose_rule_does_not_seed_invention_cycles(self, p_schema):
        # Selection cannot diverge: choose picks among EXISTING oids, so a
        # cycle through P in a choose rule is not an invention cycle.
        x = Var("x", D)
        p, q = Var("p", classref("P")), Var("q", classref("P"))
        rules = [
            Rule(
                atom(p_schema, "RP", x, q),
                [atom(p_schema, "RP", x, p), Choose()],
            )
        ]
        assert find_invention_cycle(rules) is None

    def test_choose_literal_restricts_nothing(self, p_schema):
        x = Var("x", D)
        p = Var("p", classref("P"))
        rule = Rule(atom(p_schema, "RP", x, p), [atom(p_schema, "S", x), Choose()])
        assert p not in ptime_restricted_vars(rule)
        assert x in ptime_restricted_vars(rule)


class TestDerefHeadSymbols:
    """Footnote 6: the leftmost symbol of x̂(t) / x̂ = t heads is ^P."""

    @pytest.fixture
    def q_schema(self):
        return Schema(relations={"S": D}, classes={"Q": set_of(D)})

    def test_deref_membership_head(self, q_schema):
        q = Var("q", classref("Q"))
        x = Var("x", D)
        rules = [
            Rule(Membership(q.hat(), x), [atom(q_schema, "Q", q), atom(q_schema, "S", x)])
        ]
        graph = dependency_graph(rules)
        assert "^Q" in graph["S"]
        assert is_recursion_free(rules)
        assert find_invention_cycle(rules) is None

    def test_deref_equality_head(self):
        t_schema = Schema(relations={"S": D}, classes={"T": tuple_of(a=D)})
        t = Var("t", classref("T"))
        x = Var("x", D)
        rules = [
            Rule(
                Equality(t.hat(), TupleTerm(a=x)),
                [atom(t_schema, "T", t), atom(t_schema, "S", x)],
            )
        ]
        graph = dependency_graph(rules)
        # Both head shapes write the value plane ^T, never the extent T.
        assert "^T" in graph["S"]
        assert "T" not in graph["S"]
        assert is_recursion_free(rules)

    def test_value_plane_feedback_is_recursion(self, q_schema):
        # Reading q̂ in the body while writing q̂ in the head IS a loop
        # on the value plane ^Q -> ^Q.
        q = Var("q", classref("Q"))
        x = Var("x", D)
        rules = [
            Rule(
                Membership(q.hat(), x),
                [atom(q_schema, "Q", q), Membership(q.hat(), x, positive=True)],
            )
        ]
        assert not is_recursion_free(rules)
        # ...but with no invention anywhere it is still not an IQL301.
        assert find_invention_cycle(rules) is None


class TestPrButNotRr:
    """IQLpr strictly contains IQLrr (Definition 5.1 vs 5.2)."""

    def test_free_d_var_is_pr_not_rr(self, schema):
        # S(x) <- x = x: x has set-free type D, so it is ptime-restricted
        # for free, but no positive literal ranges it -> not rr.
        x = Var("x", D)
        program = Program(
            schema,
            rules=[Rule(atom(schema, "S", x), [Equality(x, x)])],
            input_names=["R"],
            output_names=["S"],
        )
        report = classify(program)
        assert report.is_iql_pr
        assert not report.is_iql_rr
        require_iql_pr(program)
        with pytest.raises(SublanguageError):
            require_iql_rr(program)

    def test_rr_subset_of_pr_on_paper_programs(self):
        for builder in (graph_to_class_program, powerset_restricted_program):
            report = classify(builder())
            if report.is_iql_rr:
                assert report.is_iql_pr
