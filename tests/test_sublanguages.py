"""E10/E15 — Section 5: sublanguage classification and its guarantees."""

import pytest

from repro.errors import SublanguageError
from repro.iql import (
    Equality,
    Membership,
    NameTerm,
    Program,
    Rule,
    SetTerm,
    TupleTerm,
    Var,
    atom,
    classify,
    columns,
    dependency_graph,
    evaluate_full,
    is_invention_free,
    is_ptime_restricted,
    is_range_restricted,
    is_recursion_free,
    max_constructor_width,
    nest_program,
    ptime_restricted_vars,
    range_restricted_vars,
    require_iql_pr,
    require_iql_rr,
    unnest_program,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.transform import (
    graph_to_class_program,
    powerset_restricted_program,
    powerset_unrestricted_program,
)
from repro.values import OTuple, branching_factor


@pytest.fixture
def schema():
    return Schema(
        relations={"R": columns(D, D), "S": D, "RS": set_of(D)},
        classes={"P": tuple_of(a=D)},
    )


class TestVariableRestriction:
    def test_set_free_vars_are_ptime_restricted(self, schema):
        x = Var("x", D)
        rule = Rule(atom(schema, "S", x), [Equality(x, x)])
        assert is_ptime_restricted(rule)
        assert not is_range_restricted(rule)  # D vars are not free for rr

    def test_class_vars_are_range_restricted(self, schema):
        p = Var("p", classref("P"))
        rule = Rule(atom(schema, "P", p), [Equality(p, p)])
        assert is_range_restricted(rule)

    def test_propagation_through_membership(self, schema):
        # X is bound by RS(X): its variables become restricted, and then
        # X(y) restricts y.
        X, y = Var("X", set_of(D)), Var("y", D)
        rule = Rule(atom(schema, "S", y), [atom(schema, "RS", X), Membership(X, y)])
        assert is_range_restricted(rule)
        assert X in range_restricted_vars(rule)

    def test_unrestricted_set_var(self, schema):
        X = Var("X", set_of(D))
        rule = Rule(atom(schema, "RS", X), [Equality(X, X)])
        assert not is_ptime_restricted(rule)
        assert X not in ptime_restricted_vars(rule)

    def test_negative_literals_do_not_restrict(self, schema):
        X, y = Var("X", set_of(D)), Var("y", D)
        rule = Rule(
            atom(schema, "S", y),
            [atom(schema, "RS", X, positive=False), Membership(X, y)],
        )
        assert not is_range_restricted(rule)


class TestDependencyGraph:
    def test_nonrecursive_program(self, schema):
        x, y = Var("x", D), Var("y", D)
        rules = [Rule(atom(schema, "S", x), [atom(schema, "R", x, y)])]
        graph = dependency_graph(rules)
        assert "S" in graph["R"]
        assert is_recursion_free(rules)

    def test_recursive_relation(self, schema):
        x, y, z = Var("x", D), Var("y", D), Var("z", D)
        rules = [
            Rule(atom(schema, "R", x, z), [atom(schema, "R", x, y), atom(schema, "R", y, z)])
        ]
        assert not is_recursion_free(rules)

    def test_invention_target_edges(self, schema):
        # A rule inventing into P from a body that reads P is a cycle.
        rp_schema = schema.with_names(relations={"RP": columns(D, classref("P"))})
        x = Var("x", D)
        p, q = Var("p", classref("P")), Var("q", classref("P"))
        rules = [
            Rule(
                atom(rp_schema, "RP", x, q),
                [atom(rp_schema, "RP", x, p)],
            )
        ]
        assert not is_recursion_free(rules)
        assert not is_invention_free(rules)

    def test_deref_head_symbol(self, schema):
        q_schema = Schema(
            relations={"S": D}, classes={"Q": set_of(D)}
        )
        q = Var("q", classref("Q"))
        x = Var("x", D)
        rules = [
            Rule(Membership(q.hat(), x), [atom(q_schema, "Q", q), atom(q_schema, "S", x)])
        ]
        graph = dependency_graph(rules)
        # S feeds the *value plane* of Q, not its extent: value writes do
        # not create oids, so they must not count as invention recursion.
        assert "^Q" in graph["S"]
        assert "Q" not in graph["S"]
        assert is_recursion_free(rules)


class TestPaperPrograms:
    def test_graph_encoding_is_iqlrr(self):
        assert classify(graph_to_class_program()).is_iql_rr

    def test_nest_unnest_are_iqlrr(self):
        assert classify(nest_program("Src", "Dst", D, D)).is_iql_rr
        assert classify(unnest_program("Src", "Dst", D, D)).is_iql_rr

    def test_unrestricted_powerset_is_full_iql(self):
        report = classify(powerset_unrestricted_program())
        assert not report.is_iql_pr
        assert "no PTIME guarantee" in report.summary()

    def test_restricted_powerset_is_not_iqlrr_either(self):
        # Range-restricted but with invention in a loop (Section 5's point).
        report = classify(powerset_restricted_program())
        assert report.stages[0].range_restricted
        assert not report.is_iql_rr

    def test_require_helpers(self):
        require_iql_rr(graph_to_class_program())
        require_iql_pr(graph_to_class_program())
        with pytest.raises(SublanguageError):
            require_iql_rr(powerset_unrestricted_program())
        with pytest.raises(SublanguageError):
            require_iql_pr(powerset_unrestricted_program())


class TestBranchingFactorLemma:
    """Lemma 5.7: invention-free steps keep the branching factor bounded by
    max(m, n) — m the largest constructor in the program, n the input's."""

    def test_bound_holds_on_evaluation(self, tc_program, tc_schema):
        from tests.conftest import edge_instance
        from repro.workloads import path_graph

        inst = edge_instance(tc_schema, path_graph(6))
        n = max(
            (branching_factor(v) for vs in inst.relations.values() for v in vs),
            default=0,
        )
        m = max_constructor_width(tc_program)
        result = evaluate_full(tc_program, inst)
        out_branching = max(
            (branching_factor(v) for vs in result.full.relations.values() for v in vs),
            default=0,
        )
        assert out_branching <= max(m, n)

    def test_constructor_width(self, schema):
        x = Var("x", D)
        rule = Rule(
            atom(schema, "RS", SetTerm(x, Var("y", D), Var("z", D))),
            [atom(schema, "S", x), atom(schema, "S", Var("y", D)), atom(schema, "S", Var("z", D))],
        )
        program = Program(schema, rules=[rule], input_names=["S"], output_names=["RS"])
        assert max_constructor_width(program) == 3
