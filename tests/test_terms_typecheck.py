"""Tests for IQL terms, literals and static type checking (Sections 3.1, 3.3)."""

import pytest

from repro.errors import TypeCheckError
from repro.iql import (
    Choose,
    Const,
    Deref,
    Equality,
    Membership,
    NameTerm,
    Program,
    Rule,
    SetTerm,
    TupleTerm,
    Var,
    atom,
    check_program,
    check_rule,
    coercible,
    columns,
    typecheck_program,
)
from repro.iql.typecheck import assignable
from repro.schema import Schema
from repro.typesys import D, EMPTY, classref, set_of, tuple_of, union


@pytest.fixture
def schema():
    P = classref("P")
    return Schema(
        relations={"R": columns(D, D), "S": D, "RP": columns(D, P)},
        classes={"P": tuple_of(a=D, b=set_of(P)), "Q": set_of(D)},
    )


class TestTermTyping:
    def test_var(self, schema):
        assert Var("x", D).type_in(schema) == D
        with pytest.raises(TypeCheckError):
            Var("", D)
        with pytest.raises(TypeCheckError):
            Var("x", "not a type")

    def test_const(self, schema):
        assert Const("c").type_in(schema) == D
        with pytest.raises(TypeCheckError):
            Const(frozenset())

    def test_name_term(self, schema):
        assert NameTerm("R").type_in(schema) == set_of(columns(D, D))
        assert NameTerm("P").type_in(schema) == set_of(classref("P"))
        with pytest.raises(TypeCheckError):
            NameTerm("nope").type_in(schema)

    def test_deref(self, schema):
        p = Var("p", classref("P"))
        assert Deref(p).type_in(schema) == tuple_of(a=D, b=set_of(classref("P")))
        assert p.hat() == Deref(p)
        with pytest.raises(TypeCheckError):
            Deref(Var("x", D)).type_in(schema)

    def test_set_term(self, schema):
        t = SetTerm(Var("x", D), Const("c"))
        assert t.type_in(schema) == set_of(D)
        assert SetTerm().type_in(schema) == set_of(EMPTY)
        mixed = SetTerm(Var("x", D), Var("p", classref("P")))
        with pytest.raises(TypeCheckError):
            mixed.type_in(schema)

    def test_tuple_term(self, schema):
        t = TupleTerm(a=Var("x", D), b=Var("q", set_of(D)))
        assert t.type_in(schema) == tuple_of(a=D, b=set_of(D))
        assert t.variables() == {Var("x", D), Var("q", set_of(D))}


class TestAssignableAndCoercible:
    def test_assignable_reflexive(self):
        assert assignable(D, D)

    def test_empty_set_into_any_set(self):
        assert assignable(set_of(EMPTY), set_of(D))
        assert assignable(set_of(EMPTY), set_of(set_of(D)))

    def test_branch_into_union(self):
        assert assignable(D, union(D, classref("P")))
        assert not assignable(union(D, classref("P")), D)

    def test_congruence(self):
        assert assignable(
            tuple_of(a=D, b=set_of(EMPTY)), tuple_of(a=union(D, classref("P")), b=set_of(D))
        )
        assert not assignable(tuple_of(a=D), tuple_of(b=D))

    def test_coercible_union_members(self):
        u = union(classref("P"), tuple_of(a=classref("P")))
        assert coercible(classref("P"), u)
        assert coercible(u, classref("P"))

    def test_coercible_rejects_disjoint(self):
        assert not coercible(D, classref("P"))
        assert not coercible(set_of(D), tuple_of(a=D))


class TestRuleChecks:
    def test_good_datalog_rule(self, schema):
        x, y = Var("x", D), Var("y", D)
        rule = Rule(atom(schema, "S", x), [atom(schema, "R", x, y)])
        assert check_rule(rule, schema) == []

    def test_head_type_mismatch(self, schema):
        p = Var("p", classref("P"))
        rule = Rule(atom(schema, "S", p), [atom(schema, "P", p)])
        errors = check_rule(rule, schema)
        assert errors and "requires t of type" in str(errors[0])

    def test_inconsistent_variable_types(self, schema):
        rule = Rule(
            atom(schema, "S", Var("x", D)),
            [atom(schema, "P", Var("x", classref("P")))],
        )
        errors = check_rule(rule, schema)
        assert errors and "typed both" in str(errors[0])

    def test_unknown_name(self, schema):
        rule = Rule(
            Membership(NameTerm("Missing"), Var("x", D)), [atom(schema, "S", Var("x", D))]
        )
        assert check_rule(rule, schema)

    def test_invention_var_must_have_class_type(self, schema):
        x, y = Var("x", D), Var("y", D)
        rule = Rule(atom(schema, "R", x, y), [atom(schema, "S", x)])
        errors = check_rule(rule, schema)
        assert errors and "non-class type" in str(errors[0])

    def test_invention_var_of_class_type_ok(self, schema):
        x, p = Var("x", D), Var("p", classref("P"))
        rule = Rule(atom(schema, "RP", x, p), [atom(schema, "S", x)])
        assert check_rule(rule, schema) == []

    def test_set_head_requires_set_valued_deref(self, schema):
        p = Var("p", classref("P"))
        rule = Rule(Membership(p.hat(), Var("x", D)), [atom(schema, "P", p)])
        errors = check_rule(rule, schema)
        assert errors and "set valued" in str(errors[0])

    def test_equality_head_requires_non_set_deref(self, schema):
        q = Var("q", classref("Q"))
        rule = Rule(Equality(q.hat(), SetTerm()), [atom(schema, "Q", q)])
        errors = check_rule(rule, schema)
        assert errors and "non-set valued" in str(errors[0])

    def test_set_element_head_on_set_valued_class(self, schema):
        q = Var("q", classref("Q"))
        x = Var("x", D)
        rule = Rule(Membership(q.hat(), x), [atom(schema, "Q", q), atom(schema, "S", x)])
        assert check_rule(rule, schema) == []

    def test_body_membership_container_must_be_set(self, schema):
        x, y = Var("x", D), Var("y", D)
        rule = Rule(atom(schema, "S", x), [Membership(x, y)])
        errors = check_rule(rule, schema)
        assert errors and "non-set type" in str(errors[0])

    def test_body_equality_coercion_allowed(self, schema):
        # y = p̂ where p̂: [a: D, b: {P}] and the right side matches: fine;
        # but D against {D} is not.
        x = Var("x", D)
        q = Var("q", classref("Q"))
        bad = Rule(atom(schema, "S", x), [Equality(x, q.hat())])
        errors = check_rule(bad, schema)
        assert errors and "cannot coerce" in str(errors[0])

    def test_deletion_rule_cannot_invent(self, schema):
        x, p = Var("x", D), Var("p", classref("P"))
        rule = Rule(atom(schema, "RP", x, p), [atom(schema, "S", x)], delete=True)
        errors = check_rule(rule, schema)
        assert any("deletion" in str(e) for e in errors)

    def test_negative_head_literal_rejected_at_construction(self, schema):
        with pytest.raises(TypeCheckError):
            Rule(atom(schema, "S", Var("x", D), positive=False), [])

    def test_choose_plus_delete_rejected(self, schema):
        x = Var("x", D)
        rule = Rule(atom(schema, "S", x), [Choose(), atom(schema, "S", x)], delete=True)
        errors = check_rule(rule, schema)
        assert any("choose and deletion" in str(e) for e in errors)


class TestProgramChecks:
    def test_typecheck_program_raises_first_error(self, schema):
        p = Var("p", classref("P"))
        bad = Program(
            schema,
            rules=[Rule(atom(schema, "S", p), [atom(schema, "P", p)])],
            input_names=["S"],
            output_names=["S"],
        )
        with pytest.raises(TypeCheckError):
            typecheck_program(bad)

    def test_check_program_collects(self, schema):
        p = Var("p", classref("P"))
        x = Var("x", D)
        bad = Program(
            schema,
            rules=[
                Rule(atom(schema, "S", p), [atom(schema, "P", p)]),
                Rule(atom(schema, "S", x), [Membership(x, x)]),
            ],
            input_names=["S"],
        )
        assert len(check_program(bad)) == 2

    def test_io_names_must_exist(self, schema):
        x = Var("x", D)
        with pytest.raises(TypeCheckError):
            Program(
                schema,
                rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)])],
                input_names=["NOPE"],
            )

    def test_stage_composition_then(self, schema):
        x = Var("x", D)
        r = Rule(atom(schema, "S", x), [atom(schema, "S", x)])
        g1 = Program(schema, rules=[r], input_names=["S"], output_names=["S"])
        g2 = Program(schema, rules=[r], input_names=["S"], output_names=["S"])
        combined = g1.then(g2)
        assert len(combined.stages) == 2

    def test_program_feature_flags(self, schema):
        x = Var("x", D)
        plain = Program(schema, rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)])])
        assert plain.is_plain_iql()
        chooser = Program(
            schema, rules=[Rule(atom(schema, "S", x), [Choose(), atom(schema, "S", x)])]
        )
        assert chooser.uses_choose() and not chooser.is_plain_iql()
        deleter = Program(
            schema, rules=[Rule(atom(schema, "S", x), [atom(schema, "S", x)], delete=True)]
        )
        assert deleter.uses_deletion()
