"""Tests for evaluation tracing (derivation logs)."""


from repro.iql import Evaluator
from repro.transform import graph_instance, graph_to_class_program
from repro.schema import Instance, Schema
from repro.iql import Program, Rule, Var, atom, columns, Equality, TupleTerm, typecheck_program
from repro.typesys import D, classref, tuple_of
from repro.values import Oid, OTuple


class TestTrace:
    def test_disabled_by_default(self):
        evaluator = Evaluator(graph_to_class_program())
        result = evaluator.run(graph_instance({("a", "b")}))
        assert result.trace is None

    def test_events_cover_facts_and_inventions(self):
        evaluator = Evaluator(graph_to_class_program(), trace=True)
        result = evaluator.run(graph_instance({("a", "b")}))
        kinds = {e.kind for e in result.trace}
        assert {"fact", "invent", "assign"} <= kinds
        invented = [e for e in result.trace if e.kind == "invent"]
        assert len(invented) == result.stats.oids_invented

    def test_rule_labels_appear(self):
        evaluator = Evaluator(graph_to_class_program(), trace=True)
        result = evaluator.run(graph_instance({("a", "b")}))
        labels = {e.rule for e in result.trace}
        assert "invent" in labels and "(★)" in labels

    def test_star_conflicts_are_traced(self):
        schema = Schema(
            relations={"Seed": columns(D, classref("P")), "V": D},
            classes={"P": tuple_of(val=D)},
        )
        p = Var("p", classref("P"))
        v = Var("v", D)
        program = typecheck_program(
            Program(
                schema,
                rules=[
                    Rule(
                        Equality(p.hat(), TupleTerm(val=v)),
                        [atom(schema, "Seed", Var("x", D), p), atom(schema, "V", v)],
                    )
                ],
                input_names=["Seed", "P", "V"],
                output_names=["P"],
            )
        )
        o = Oid()
        inst = Instance(schema.project(["Seed", "P", "V"]))
        inst.add_class_member("P", o)
        inst.add_relation_member("Seed", OTuple(A01="k", A02=o))
        inst.add_relation_member("V", "v1")
        inst.add_relation_member("V", "v2")
        result = Evaluator(program, trace=True).run(inst)
        conflicts = [e for e in result.trace if e.kind == "ignore"]
        assert conflicts and "conflicting" in conflicts[0].detail

    def test_repr_is_readable(self):
        evaluator = Evaluator(graph_to_class_program(), trace=True)
        result = evaluator.run(graph_instance({("a", "b")}))
        line = repr(result.trace[0])
        assert line.startswith("[step ")
