"""Tests for the finite-tree representation of o-values (Section 2.1)."""

import pytest
from hypothesis import given

from repro.errors import OValueError
from repro.values import (
    LEAF,
    SET,
    TUPLE,
    Oid,
    OSet,
    OTuple,
    ValueTree,
    branching_factor,
    from_ovalue,
    to_ovalue,
    value_depth,
    value_size,
)
from tests.test_ovalues import ovalues


class TestNodeInvariants:
    def test_leaf_labels(self):
        assert ValueTree(LEAF, label="d").label == "d"
        assert ValueTree(LEAF, label=Oid()).out_degree == 0

    def test_leaf_rejects_composite_labels(self):
        with pytest.raises(OValueError):
            ValueTree(LEAF, label=OSet())

    def test_tuple_arcs_must_be_labelled_distinctly(self):
        child = ValueTree(LEAF, label=1)
        with pytest.raises(OValueError):
            ValueTree(TUPLE, children=((None, child),))
        with pytest.raises(OValueError):
            ValueTree(TUPLE, children=(("a", child), ("a", child)))

    def test_set_children_must_be_distinct_subtrees(self):
        # This is the paper's representation-level duplicate elimination.
        child = ValueTree(LEAF, label=1)
        with pytest.raises(OValueError):
            ValueTree(SET, children=((None, child), (None, child)))

    def test_set_arcs_are_unlabelled(self):
        child = ValueTree(LEAF, label=1)
        with pytest.raises(OValueError):
            ValueTree(SET, children=(("a", child),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(OValueError):
            ValueTree("weird")


class TestConversion:
    def test_tuple_conversion(self):
        v = OTuple(name="Adam", tags=OSet(["x"]))
        tree = from_ovalue(v)
        assert tree.kind == TUPLE
        assert to_ovalue(tree) == v

    def test_measures_match_value_measures(self):
        v = OTuple(a=OSet([1, 2, 3]), b=OTuple())
        tree = from_ovalue(v)
        assert tree.branching_factor() == branching_factor(v)
        assert tree.depth() == value_depth(v)
        assert tree.size() == value_size(v)

    def test_leaves(self):
        o = Oid()
        v = OSet([OTuple(a="x", b=o)])
        assert set(from_ovalue(v).leaves()) == {"x", o}

    def test_render_smoke(self):
        text = from_ovalue(OTuple(a=OSet([1]))).render()
        assert "×" in text and "*" in text


@given(ovalues())
def test_tree_round_trip(v):
    assert to_ovalue(from_ovalue(v)) == v


@given(ovalues())
def test_tree_measures_agree(v):
    tree = from_ovalue(v)
    assert tree.size() == value_size(v)
    assert tree.depth() == value_depth(v)
    assert tree.branching_factor() == branching_factor(v)
