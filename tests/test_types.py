"""Tests for type expressions and their interpretations (Section 2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeExpressionError
from repro.typesys import (
    D,
    EMPTY,
    Base,
    ClassRef,
    Empty,
    Intersection,
    TupleOf,
    Union,
    classref,
    count_type,
    enumerate_type,
    intersection,
    is_disjoint,
    is_empty_type,
    member,
    set_of,
    tuple_of,
    union,
)
from repro.values import Oid, OSet, OTuple


class TestConstruction:
    def test_singletons(self):
        assert Base() is D
        assert Empty() is EMPTY

    def test_union_flattens_and_dedupes(self):
        t = union(D, union(D, classref("P")))
        assert isinstance(t, Union)
        assert len(t.members) == 2

    def test_union_smart_constructor_degenerates(self):
        assert union(D) is D
        assert union(EMPTY, D) is D
        assert union() is EMPTY
        assert isinstance(union(EMPTY, EMPTY), Empty)

    def test_intersection_absorbs_empty(self):
        assert isinstance(intersection(D, EMPTY), Empty)
        assert intersection(D) is D

    def test_binary_constructors_require_two_members(self):
        with pytest.raises(TypeExpressionError):
            Union(D)
        with pytest.raises(TypeExpressionError):
            Intersection(D)

    def test_tuple_duplicate_attr_rejected(self):
        with pytest.raises(TypeExpressionError):
            TupleOf({"A": D}, A=D)

    def test_classref_requires_name(self):
        with pytest.raises(TypeExpressionError):
            ClassRef("")

    def test_equality_is_canonical(self):
        assert union(D, classref("P")) == union(classref("P"), D)
        assert tuple_of(A=D, B=D) == tuple_of(B=D, A=D)
        assert hash(set_of(D)) == hash(set_of(D))


class TestStructure:
    def test_class_names(self):
        t = tuple_of(a=classref("P"), b=set_of(union(classref("Q"), D)))
        assert t.class_names() == {"P", "Q"}

    def test_has_set_constructor(self):
        assert set_of(D).has_set_constructor()
        assert tuple_of(a=set_of(D)).has_set_constructor()
        assert not tuple_of(a=D, b=classref("P")).has_set_constructor()

    def test_depth(self):
        assert D.depth() == 0
        assert set_of(tuple_of(a=D)).depth() == 2

    def test_substitute_classes(self):
        t = tuple_of(a=classref("P"), b=set_of(classref("P")))
        out = t.substitute_classes({"P": union(classref("Q"), classref("R"))})
        assert out.class_names() == {"Q", "R"}

    def test_intersection_predicates(self):
        reduced = intersection(classref("P"), classref("Q"))
        assert reduced.is_intersection_reduced()
        assert not reduced.is_intersection_free()
        bad = Intersection(tuple_of(a=D), tuple_of(a=D, b=D))
        assert not bad.is_intersection_reduced()
        assert set_of(D).is_intersection_free()


class TestMembership:
    def setup_method(self):
        self.o1, self.o2 = Oid(), Oid()
        self.pi = {"P": {self.o1}, "Q": {self.o2}}

    def test_base(self):
        assert member("d", D, self.pi)
        assert member(3, D, self.pi)
        assert not member(self.o1, D, self.pi)

    def test_empty_has_no_members(self):
        assert not member("d", EMPTY, self.pi)
        assert not member(OSet(), EMPTY, self.pi)

    def test_class(self):
        assert member(self.o1, classref("P"), self.pi)
        assert not member(self.o2, classref("P"), self.pi)
        assert not member("d", classref("P"), self.pi)

    def test_set(self):
        t = set_of(D)
        assert member(OSet(), t, self.pi)  # the empty set inhabits every set type
        assert member(OSet(["a", "b"]), t, self.pi)
        assert not member(OSet([self.o1]), t, self.pi)
        assert not member("a", t, self.pi)

    def test_set_of_empty_vs_empty(self):
        # The paper: {⊥} and ⊥ are NOT equivalent — {} inhabits {⊥}.
        assert member(OSet(), set_of(EMPTY), self.pi)
        assert not member(OSet(["x"]), set_of(EMPTY), self.pi)

    def test_tuple_exact_attributes(self):
        t = tuple_of(a=D, b=classref("P"))
        assert member(OTuple(a="x", b=self.o1), t, self.pi)
        assert not member(OTuple(a="x"), t, self.pi)
        assert not member(OTuple(a="x", b=self.o1, c="extra"), t, self.pi)

    def test_tuple_star_allows_extra_attributes(self):
        t = tuple_of(a=D)
        value = OTuple(a="x", extra=OSet())
        assert not member(value, t, self.pi)
        assert member(value, t, self.pi, star=True)

    def test_empty_tuple_type_under_star_is_all_tuples(self):
        assert member(OTuple(a=1, b=2), tuple_of(), self.pi, star=True)
        assert not member(OTuple(a=1), tuple_of(), self.pi)

    def test_union_and_intersection(self):
        t = union(D, classref("P"))
        assert member("d", t, self.pi)
        assert member(self.o1, t, self.pi)
        assert not member(self.o2, t, self.pi)
        both = intersection(tuple_of(a=D), tuple_of(a=D))
        assert member(OTuple(a="x"), both, self.pi)

    def test_tuple_with_empty_component_is_empty(self):
        assert not member(OTuple(a="x"), tuple_of(a=EMPTY), self.pi)
        # The paper: [A1: ⊥] ≡ ⊥.
        assert is_empty_type(tuple_of(A1=EMPTY), self.pi)
        assert not is_empty_type(set_of(EMPTY), self.pi)


class TestEmptiness:
    def test_class_emptiness_depends_on_pi(self):
        assert is_empty_type(classref("P"), {"P": set()})
        assert not is_empty_type(classref("P"), {"P": {Oid()}})

    def test_disjointness(self):
        o = Oid()
        assert is_disjoint({"P": {o}, "Q": {Oid()}})
        assert not is_disjoint({"P": {o}, "Q": {o}})

    def test_intersection_of_distinct_classes_empty_when_disjoint(self):
        o1, o2 = Oid(), Oid()
        pi = {"P": {o1}, "Q": {o2}}
        assert is_empty_type(intersection(classref("P"), classref("Q")), pi)
        assert is_empty_type(intersection(D, classref("P")), pi)


class TestEnumeration:
    def test_enumerate_base(self):
        assert enumerate_type(D, ["a", "b"], {}) == ["a", "b"]

    def test_enumerate_powerset(self):
        out = enumerate_type(set_of(D), ["a", "b"], {})
        assert len(out) == 4  # {}, {a}, {b}, {a,b}

    def test_enumerate_tuple_product(self):
        out = enumerate_type(tuple_of(x=D, y=D), ["a", "b"], {})
        assert len(out) == 4

    def test_enumerate_budget(self):
        from repro.typesys import EnumerationBudgetExceeded

        with pytest.raises(EnumerationBudgetExceeded):
            enumerate_type(set_of(D), [str(i) for i in range(40)], {}, budget=100)

    def test_enumerated_values_are_members(self):
        o = Oid()
        pi = {"P": {o}}
        t = tuple_of(a=union(D, classref("P")), b=set_of(D))
        for v in enumerate_type(t, ["c"], pi, budget=1000):
            assert member(v, t, pi)

    def test_count_matches_enumeration(self):
        t = set_of(D)
        assert count_type(t, frozenset(["a", "b", "c"]), {}) == 8

    def test_star_enumeration_rejected(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            enumerate_type(tuple_of(), [], {}, star=True)


@given(st.integers(0, 4))
def test_powerset_enumeration_is_exponential(n):
    consts = [f"c{i}" for i in range(n)]
    assert len(enumerate_type(set_of(D), consts, {})) == 2 ** n
