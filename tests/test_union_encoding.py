"""E5 — Example 3.4.3: lossless elimination of union types."""


from repro.iql import evaluate, typecheck_program
from repro.schema import Instance, are_o_isomorphic
from repro.transform import (
    union_decode_program,
    union_encode_program,
    union_instance,
    union_schemas,
)


def round_trip(links):
    original = union_instance(links)
    encoded = evaluate(typecheck_program(union_encode_program()), original)
    encoded.validate()
    decoded = evaluate(typecheck_program(union_decode_program()), encoded)
    # Rename the decoded class P_dec back to P for the comparison.
    s, _ = union_schemas()
    renamed = Instance(s)
    for oid in decoded.classes["P_dec"]:
        renamed.add_class_member("P", oid)
    renamed.nu.update(decoded.nu)
    return original, encoded, renamed


class TestRoundTrip:
    def test_paper_shape(self):
        original, encoded, renamed = round_trip({"a": ("a", "b"), "b": "a", "c": None})
        assert len(encoded.classes["P_enc"]) == 3
        assert are_o_isomorphic(original, renamed)

    def test_pure_oid_branches(self):
        original, _, renamed = round_trip({"a": "b", "b": "a"})
        assert are_o_isomorphic(original, renamed)

    def test_pure_tuple_branches(self):
        original, _, renamed = round_trip({"a": ("b", "b"), "b": ("a", "a")})
        assert are_o_isomorphic(original, renamed)

    def test_all_undefined(self):
        original, _, renamed = round_trip({"a": None, "b": None})
        assert are_o_isomorphic(original, renamed)

    def test_self_referential(self):
        original, _, renamed = round_trip({"a": "a"})
        assert are_o_isomorphic(original, renamed)

    def test_larger_mixed(self):
        original, _, renamed = round_trip(
            {"a": ("b", "c"), "b": "c", "c": ("a", "a"), "d": None, "e": "d"}
        )
        assert are_o_isomorphic(original, renamed)


class TestEncodingShape:
    def test_encoding_has_no_union_values(self):
        # Every encoded value is the [B1, B2] record with exactly one
        # non-empty side (or the oid is undefined).
        original = union_instance({"a": ("a", "b"), "b": "a", "c": None})
        encoded = evaluate(union_encode_program(), original)
        for oid in encoded.classes["P_enc"]:
            value = encoded.value_of(oid)
            if value is None:
                continue
            b1, b2 = value["B1"], value["B2"]
            assert (len(b1), len(b2)) in {(1, 0), (0, 1)}

    def test_undefined_stays_undefined(self):
        original = union_instance({"a": None})
        encoded = evaluate(union_encode_program(), original)
        (oid,) = encoded.classes["P_enc"]
        assert encoded.value_of(oid) is None
