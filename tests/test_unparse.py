"""Round-trip tests: program_to_source ∘ program_from_source ≈ id.

Run over every program builder in the library — the strongest possible
check that the surface syntax covers the programmatic API.
"""

import pytest

from repro.iql import evaluate, nest_program, typecheck_program, unnest_program
from repro.parser import program_from_source
from repro.parser.unparse import program_to_source, schema_to_source, type_to_source
from repro.schema import are_o_isomorphic
from repro.transform import (
    class_to_graph_program,
    graph_instance,
    graph_to_class_program,
    powerset_restricted_program,
    powerset_unrestricted_program,
    quadrangle_choose_program,
    quadrangle_copies_program,
    quadrangle_input,
    union_encode_program,
)
from repro.typesys import D, classref, set_of, tuple_of, union


BUILDERS = [
    graph_to_class_program,
    class_to_graph_program,
    powerset_unrestricted_program,
    powerset_restricted_program,
    union_encode_program,
    quadrangle_copies_program,
    quadrangle_choose_program,
    lambda: nest_program("Src", "Dst", D, D),
    lambda: unnest_program("Src", "Dst", D, D),
]


@pytest.mark.parametrize("builder", BUILDERS, ids=lambda b: getattr(b, "__name__", "lambda"))
def test_round_trip_structure(builder):
    original = builder()
    source = program_to_source(original)
    reparsed = program_from_source(source)
    assert reparsed.schema == original.schema
    assert reparsed.input_names == original.input_names
    assert reparsed.output_names == original.output_names
    assert len(reparsed.stages) == len(original.stages)
    for a, b in zip(reparsed.stages, original.stages):
        assert list(a) == list(b)
    typecheck_program(reparsed)


def test_round_trip_behaviour_graph():
    source = program_to_source(graph_to_class_program())
    reparsed = program_from_source(source)
    edges = {("a", "b"), ("b", "a"), ("b", "c")}
    out_original = evaluate(graph_to_class_program(), graph_instance(edges))
    out_reparsed = evaluate(reparsed, graph_instance(edges))
    assert are_o_isomorphic(out_original, out_reparsed)


def test_round_trip_behaviour_choose():
    source = program_to_source(quadrangle_choose_program())
    reparsed = program_from_source(source)
    out_original = evaluate(quadrangle_choose_program(), quadrangle_input("a", "b"))
    out_reparsed = evaluate(reparsed, quadrangle_input("a", "b"))
    assert are_o_isomorphic(out_original, out_reparsed)


def test_type_rendering_round_trips():
    from repro.parser import type_from_source

    cases = [
        D,
        set_of(D),
        tuple_of(a=D, b=set_of(classref("P"))),
        union(D, tuple_of(s=D)),
        tuple_of(),
    ]
    for t in cases:
        assert type_from_source(type_to_source(t), ["P"]) == t


def test_schema_rendering_round_trips():
    from repro.parser import schema_from_source
    from repro.schema import Schema

    schema = Schema(
        relations={"R": tuple_of(A1=D, A2=union(D, classref("P")))},
        classes={"P": tuple_of(name=D, kids=set_of(classref("P")))},
    )
    assert schema_from_source(schema_to_source(schema)) == schema


def test_string_constants_escape():
    from repro.iql import Const
    from repro.parser.unparse import _term_to_source

    assert _term_to_source(Const('say "hi"')) == '"say \\"hi\\""'
