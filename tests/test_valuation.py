"""Tests for valuations, matching and body solving (Section 3.2)."""

import pytest

from repro.errors import EvaluationError
from repro.iql import (
    Const,
    Deref,
    Equality,
    Membership,
    NameTerm,
    SetTerm,
    TupleTerm,
    Var,
    columns,
    eval_term,
    match,
    satisfies,
    solve_body,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple


@pytest.fixture
def world():
    schema = Schema(
        relations={"R": columns(D, D), "S": D},
        classes={"P": tuple_of(a=D), "Q": set_of(D)},
    )
    p1, p2, q1 = Oid("p1"), Oid("p2"), Oid("q1")
    inst = Instance(
        schema,
        relations={
            "R": [OTuple(A01="a", A02="b"), OTuple(A01="b", A02="c")],
            "S": ["a", "b"],
        },
        classes={"P": [p1, p2], "Q": [q1]},
        nu={p1: OTuple(a="va"), q1: OSet(["a", "b"])},
    )
    return schema, inst, (p1, p2, q1)


class TestEvalTerm:
    def test_const_and_var(self, world):
        _, inst, _ = world
        x = Var("x", D)
        assert eval_term(Const("c"), {}, inst) == "c"
        assert eval_term(x, {}, inst) is None
        assert eval_term(x, {x: "v"}, inst) == "v"

    def test_name_terms(self, world):
        _, inst, (p1, p2, _) = world
        assert eval_term(NameTerm("S"), {}, inst) == OSet(["a", "b"])
        assert eval_term(NameTerm("P"), {}, inst) == OSet([p1, p2])

    def test_deref(self, world):
        _, inst, (p1, p2, q1) = world
        p = Var("p", classref("P"))
        assert eval_term(Deref(p), {p: p1}, inst) == OTuple(a="va")
        assert eval_term(Deref(p), {p: p2}, inst) is None  # undefined ν
        assert eval_term(Deref(p), {}, inst) is None  # unbound
        q = Var("q", classref("Q"))
        assert eval_term(Deref(q), {q: q1}, inst) == OSet(["a", "b"])

    def test_deref_of_non_oid_binding_raises(self, world):
        _, inst, _ = world
        p = Var("p", classref("P"))
        with pytest.raises(EvaluationError):
            eval_term(Deref(p), {p: "not an oid"}, inst)

    def test_composite_terms(self, world):
        _, inst, _ = world
        x = Var("x", D)
        t = TupleTerm(a=x, b=SetTerm(Const("k"), x))
        assert eval_term(t, {x: "v"}, inst) == OTuple(a="v", b=OSet(["k", "v"]))
        assert eval_term(t, {}, inst) is None


class TestMatch:
    def test_var_binding_respects_type(self, world):
        _, inst, (p1, _, _) = world
        x = Var("x", D)
        p = Var("p", classref("P"))
        assert list(match(x, "v", {}, inst))[0][x] == "v"
        assert list(match(x, p1, {}, inst)) == []  # oid not in ⟦D⟧
        assert list(match(p, p1, {}, inst))[0][p] == p1
        q_oid = list(inst.classes["Q"])[0]
        assert list(match(p, q_oid, {}, inst)) == []  # wrong class

    def test_bound_var_checks_equality(self, world):
        _, inst, _ = world
        x = Var("x", D)
        assert len(list(match(x, "v", {x: "v"}, inst))) == 1
        assert list(match(x, "w", {x: "v"}, inst)) == []

    def test_tuple_pattern(self, world):
        _, inst, _ = world
        x, y = Var("x", D), Var("y", D)
        pattern = TupleTerm(A01=x, A02=y)
        out = list(match(pattern, OTuple(A01="a", A02="b"), {}, inst))
        assert len(out) == 1 and out[0][x] == "a" and out[0][y] == "b"
        assert list(match(pattern, OTuple(Z="a"), {}, inst)) == []
        assert list(match(pattern, "scalar", {}, inst)) == []

    def test_set_pattern_singleton(self, world):
        _, inst, _ = world
        x = Var("x", D)
        out = list(match(SetTerm(x), OSet(["only"]), {}, inst))
        assert len(out) == 1 and out[0][x] == "only"
        assert list(match(SetTerm(x), OSet(["a", "b"]), {}, inst)) == []

    def test_set_pattern_collapse(self, world):
        # {x, y} can match a singleton with x = y.
        _, inst, _ = world
        x, y = Var("x", D), Var("y", D)
        out = list(match(SetTerm(x, y), OSet(["v"]), {}, inst))
        assert len(out) == 1 and out[0][x] == "v" and out[0][y] == "v"

    def test_set_pattern_two_elements(self, world):
        _, inst, _ = world
        x, y = Var("x", D), Var("y", D)
        out = list(match(SetTerm(x, y), OSet(["a", "b"]), {}, inst))
        assignments = {(b[x], b[y]) for b in out}
        assert assignments == {("a", "b"), ("b", "a")}

    def test_empty_set_pattern(self, world):
        _, inst, _ = world
        assert len(list(match(SetTerm(), OSet(), {}, inst))) == 1
        assert list(match(SetTerm(), OSet(["a"]), {}, inst)) == []

    def test_unbound_deref_reverse_lookup(self, world):
        _, inst, (p1, _, _) = world
        p = Var("p", classref("P"))
        out = list(match(Deref(p), OTuple(a="va"), {}, inst))
        assert len(out) == 1 and out[0][p] == p1
        assert list(match(Deref(p), OTuple(a="nope"), {}, inst)) == []


class TestSatisfies:
    def test_membership(self, world):
        _, inst, _ = world
        x = Var("x", D)
        lit = Membership(NameTerm("S"), x)
        assert satisfies(lit, {x: "a"}, inst)
        assert not satisfies(lit, {x: "z"}, inst)
        assert satisfies(lit.negate(), {x: "z"}, inst)

    def test_equality(self, world):
        _, inst, _ = world
        x = Var("x", D)
        assert satisfies(Equality(x, Const("a")), {x: "a"}, inst)
        assert satisfies(Equality(x, Const("b"), positive=False), {x: "a"}, inst)

    def test_undefined_deref_not_satisfied(self, world):
        _, inst, (_, p2, _) = world
        p = Var("p", classref("P"))
        lit = Equality(Deref(p), TupleTerm(a=Const("va")))
        assert not satisfies(lit, {p: p2}, inst)


class TestSolveBody:
    def test_join(self, world):
        schema, inst, _ = world
        x, y, z = Var("x", D), Var("y", D), Var("z", D)
        body = [
            Membership(NameTerm("R"), TupleTerm(A01=x, A02=y)),
            Membership(NameTerm("R"), TupleTerm(A01=y, A02=z)),
        ]
        out = list(solve_body(body, inst))
        assert len(out) == 1
        binding = out[0]
        assert (binding[x], binding[y], binding[z]) == ("a", "b", "c")

    def test_negation_as_filter(self, world):
        _, inst, _ = world
        x = Var("x", D)
        body = [
            Membership(NameTerm("S"), x),
            Membership(NameTerm("R"), TupleTerm(A01=x, A02=Const("c")), positive=False),
        ]
        out = {b[x] for b in solve_body(body, inst)}
        assert out == {"a"}  # (b, c) ∈ R, so b is filtered out

    def test_inequality_filter(self, world):
        _, inst, _ = world
        x, y = Var("x", D), Var("y", D)
        body = [
            Membership(NameTerm("S"), x),
            Membership(NameTerm("S"), y),
            Equality(x, y, positive=False),
        ]
        out = {(b[x], b[y]) for b in solve_body(body, inst)}
        assert out == {("a", "b"), ("b", "a")}

    def test_membership_through_set_variable(self, world):
        _, inst, (_, _, q1) = world
        q = Var("q", classref("Q"))
        e = Var("e", D)
        body = [Membership(NameTerm("Q"), q), Membership(Deref(q), e)]
        out = {b[e] for b in solve_body(body, inst)}
        assert out == {"a", "b"}

    def test_equality_binds_by_matching(self, world):
        _, inst, (p1, _, _) = world
        p = Var("p", classref("P"))
        v = Var("v", D)
        body = [
            Membership(NameTerm("P"), p),
            Equality(Deref(p), TupleTerm(a=v)),
        ]
        out = list(solve_body(body, inst))
        # p2 has undefined ν, so only p1 matches.
        assert len(out) == 1 and out[0][v] == "va"

    def test_enumeration_fallback(self, world):
        # X = X with X: {D} — the powerset search of Example 3.4.2.
        _, inst, _ = world
        X = Var("X", set_of(D))
        out = list(solve_body([Equality(X, X)], inst))
        constants = inst.constants()
        assert len(out) == 2 ** len(constants)

    def test_empty_body_yields_unit(self, world):
        _, inst, _ = world
        assert list(solve_body([], inst)) == [{}]
