"""Tests for equality-by-value (Section 7's coercion mechanism) and the
Example 4.1.2 soundness scenario."""

import pytest

from repro.errors import InstanceError
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.valuebased.equality import value_equal, value_partition
from repro.values import Oid, OSet, OTuple


@pytest.fixture
def world():
    P = classref("P")
    schema = Schema(
        classes={"P": tuple_of(n=D, peer=P), "Q": tuple_of(n=D, peer=P)}
    )
    return schema


class TestValueEqual:
    def test_identical_finite_values(self):
        schema = Schema(classes={"P": D})
        a, b, c = Oid(), Oid(), Oid()
        inst = Instance(schema, classes={"P": [a, b, c]}, nu={a: "x", b: "x", c: "y"})
        assert value_equal(inst, a, b)
        assert not value_equal(inst, a, c)

    def test_cyclic_unfoldings(self, world):
        # Two 2-cycles with matching labels are value-equal; changing one
        # label anywhere in the cycle breaks it.
        a1, a2, b1, b2 = (Oid() for _ in range(4))
        inst = Instance(
            world,
            classes={"P": [a1, a2, b1, b2]},
            nu={
                a1: OTuple(n="u", peer=a2),
                a2: OTuple(n="v", peer=a1),
                b1: OTuple(n="u", peer=b2),
                b2: OTuple(n="v", peer=b1),
            },
        )
        assert value_equal(inst, a1, b1)
        assert value_equal(inst, a2, b2)
        assert not value_equal(inst, a1, b2)

    def test_cross_class_comparison(self, world):
        # Equality-by-value does not care which class an object lives in —
        # it addresses the underlying infinite value (Section 7).
        p, p2, q = Oid(), Oid(), Oid()
        inst = Instance(
            world,
            classes={"P": [p, p2], "Q": [q]},
            nu={
                p: OTuple(n="x", peer=p2),
                p2: OTuple(n="y", peer=p),
                q: OTuple(n="x", peer=p2),
            },
        )
        assert value_equal(inst, p, q)

    def test_undefined_values_are_self_equal_only(self):
        schema = Schema(classes={"P": D})
        a, b = Oid(), Oid()
        inst = Instance(schema, classes={"P": [a, b]})
        assert value_equal(inst, a, a)
        assert not value_equal(inst, a, b)

    def test_unfolding_depth_does_not_matter(self):
        # A self-loop and a 3-cycle with equal labels unfold to the same
        # infinite tree.
        P = classref("P")
        schema = Schema(classes={"P": tuple_of(peer=P)})
        a, b1, b2, b3 = (Oid() for _ in range(4))
        inst = Instance(
            schema,
            classes={"P": [a, b1, b2, b3]},
            nu={
                a: OTuple(peer=a),
                b1: OTuple(peer=b2),
                b2: OTuple(peer=b3),
                b3: OTuple(peer=b1),
            },
        )
        assert value_equal(inst, a, b1)

    def test_sets_compare_as_sets(self):
        schema = Schema(classes={"Q": set_of(D)})
        a, b, c = Oid(), Oid(), Oid()
        inst = Instance(
            schema,
            classes={"Q": [a, b, c]},
            nu={a: OSet(["x", "y"]), b: OSet(["y", "x"]), c: OSet(["x"])},
        )
        assert value_equal(inst, a, b)
        assert not value_equal(inst, a, c)


class TestValuePartition:
    def test_partition_groups_duplicates(self):
        schema = Schema(classes={"P": D})
        oids = [Oid() for _ in range(5)]
        values = ["x", "y", "x", "z", "y"]
        inst = Instance(schema, classes={"P": oids}, nu=dict(zip(oids, values)))
        groups = value_partition(inst, oids)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2, 2]

    def test_empty(self):
        schema = Schema(classes={"P": D})
        assert value_partition(Instance(schema), []) == []


class TestExample412:
    """Example 4.1.2: why classes must be pairwise disjoint.

    The paper's scenario — one oid in both P1: {D} and P2: {{D}} with
    ν(o) = {} — would let well-typed rules derive an illegal instance.
    The model forbids the premise outright."""

    def test_nondisjoint_assignment_rejected(self):
        schema = Schema(classes={"P1": set_of(D), "P2": set_of(set_of(D))})
        o = Oid()
        inst = Instance(schema)
        inst.add_class_member("P1", o)
        with pytest.raises(InstanceError, match="disjoint"):
            inst.add_class_member("P2", o)
