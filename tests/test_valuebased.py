"""E13 — Section 7: regular trees, the value-based model, φ and ψ."""

import pytest

from repro.errors import RegularTreeError, SchemaError
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of, union
from repro.valuebased import (
    RegularTreeSystem,
    VInstance,
    VSchema,
    from_finite_value,
    is_v_type,
    object_schema,
    phi,
    psi,
    run_iqlv,
    trees_equal,
    vmember,
)
from repro.values import Oid, OSet, OTuple


def spouse_schema():
    return VSchema({"Person": tuple_of(name=D, spouse=classref("Person"))})


def cyclic_pair(vi, name_a="Adam", name_b="Eve"):
    sys = vi.system
    a = sys.declare(sys.fresh_id("a"))
    b = sys.declare(sys.fresh_id("b"))
    na, nb = sys.add_const(name_a), sys.add_const(name_b)
    sys.define(a, ("tuple", (("name", na), ("spouse", b))))
    sys.define(b, ("tuple", (("name", nb), ("spouse", a))))
    vi.add_value("Person", a)
    vi.add_value("Person", b)
    return a, b


class TestRegularTrees:
    def test_finite_value_embedding(self):
        sys = RegularTreeSystem()
        root = from_finite_value(sys, OTuple(a="x", b=OSet([1, 2])))
        assert sys.subtree_count(root) >= 4

    def test_embedding_rejects_oids(self):
        sys = RegularTreeSystem()
        with pytest.raises(RegularTreeError):
            from_finite_value(sys, OSet([Oid()]))

    def test_bisimulation_collapses_duplicates_in_sets(self):
        sys = RegularTreeSystem()
        c1, c2 = sys.add_const("x"), sys.add_const("x")
        s = sys.add_set([c1, c2])
        single = sys.add_set([sys.add_const("x")])
        assert trees_equal(sys, s, sys, single)

    def test_cyclic_trees_equal_up_to_unfolding(self):
        # An infinite chain a→a equals b→c→b→c… when labels agree.
        sys = RegularTreeSystem()
        a = sys.declare("a")
        sys.define(a, ("tuple", (("next", "a"),)))
        b, c = sys.declare("b"), sys.declare("c")
        sys.define(b, ("tuple", (("next", "c"),)))
        sys.define(c, ("tuple", (("next", "b"),)))
        assert trees_equal(sys, a, sys, b)

    def test_distinct_labels_distinguish(self):
        sys = RegularTreeSystem()
        a = sys.declare("a")
        sys.define(a, ("tuple", (("v", sys.add_const(1)), ("next", "a"))))
        b = sys.declare("b")
        sys.define(b, ("tuple", (("v", sys.add_const(2)), ("next", "b"))))
        assert not trees_equal(sys, a, sys, b)

    def test_minimize(self):
        sys = RegularTreeSystem()
        b, c = sys.declare("b"), sys.declare("c")
        sys.define(b, ("tuple", (("next", "c"),)))
        sys.define(c, ("tuple", (("next", "b"),)))
        minimized, mapping = sys.minimize()
        assert mapping["b"] == mapping["c"]
        assert len(minimized.nodes) == 1

    def test_subtree_count_is_finite_for_cycles(self):
        # Proposition 7.1.3: values in v-instances are regular.
        sys = RegularTreeSystem()
        a = sys.declare("a")
        sys.define(a, ("tuple", (("next", "a"),)))
        assert sys.subtree_count(a) == 1

    def test_unfold_cuts_cycles(self):
        sys = RegularTreeSystem()
        a = sys.declare("a")
        sys.define(a, ("tuple", (("next", "a"),)))
        assert sys.unfold(a, 2) == {"next": {"next": "…"}}

    def test_incomplete_system_rejected(self):
        sys = RegularTreeSystem()
        sys.declare("pending")
        with pytest.raises(RegularTreeError):
            sys.bisimulation_classes()


class TestVSchema:
    def test_v_type_check(self):
        assert is_v_type(tuple_of(a=D, b=set_of(classref("P"))))
        assert is_v_type(union(D, D))  # degenerate: collapses to D
        assert not is_v_type(union(D, classref("P")))

    def test_union_rejected(self):
        with pytest.raises(SchemaError):
            VSchema({"P": union(D, classref("P"))})

    def test_bare_class_type_rejected(self):
        # Condition (1) of Definition 7.1.1.
        with pytest.raises(SchemaError):
            VSchema({"P1": classref("P2"), "P2": tuple_of()})


class TestVInstance:
    def test_cyclic_instance_validates(self):
        vi = VInstance(spouse_schema())
        cyclic_pair(vi)
        vi.validate()

    def test_type_violation_detected(self):
        vi = VInstance(spouse_schema())
        bad = vi.system.add_const("just a string")
        vi.add_value("Person", bad)
        assert not vi.is_valid()

    def test_vmember_class_reference_is_extensional(self):
        vs = VSchema(
            {"Person": tuple_of(name=D, spouse=classref("Person"))}
        )
        vi = VInstance(vs)
        a, b = cyclic_pair(vi)
        # a's spouse is b, which IS in I(Person): ok.
        assert vmember(vi, a, vs.classes["Person"])
        # Remove b from the class: a's spouse no longer a member.
        vi.assignment["Person"].discard(b)
        assert not vmember(vi, a, vs.classes["Person"])

    def test_equality_is_by_bisimilarity(self):
        vi1 = VInstance(spouse_schema())
        cyclic_pair(vi1)
        vi2 = VInstance(spouse_schema())
        cyclic_pair(vi2)
        assert vi1 == vi2
        vi3 = VInstance(spouse_schema())
        cyclic_pair(vi3, name_b="Lilith")
        assert vi1 != vi3


class TestTranslations:
    def test_phi_gives_valid_object_instance(self):
        vi = VInstance(spouse_schema())
        cyclic_pair(vi)
        obj = phi(vi)
        obj.validate()
        assert len(obj.classes["Person"]) == 2

    def test_phi_deduplicates_bisimilar_values(self):
        vi = VInstance(spouse_schema())
        cyclic_pair(vi)
        cyclic_pair(vi)  # a second, bisimilar pair
        obj = phi(vi)
        assert len(obj.classes["Person"]) == 2  # not 4

    def test_psi_requires_total_nu(self):
        schema = Schema(classes={"P": tuple_of(a=D)})
        inst = Instance(schema, classes={"P": [Oid()]})
        with pytest.raises(RegularTreeError):
            psi(inst)

    def test_psi_rejects_relational_schemas(self):
        schema = Schema(relations={"R": D})
        with pytest.raises(RegularTreeError):
            psi(Instance(schema))

    def test_round_trip(self):
        # Proposition 7.1.4: ψ(φ(I)) = I.
        vi = VInstance(spouse_schema())
        cyclic_pair(vi)
        assert psi(phi(vi)) == vi

    def test_psi_eliminates_duplicates(self):
        schema = Schema(classes={"P": tuple_of(n=D, peer=classref("P"))})
        a, b = Oid(), Oid()
        inst = Instance(
            schema,
            classes={"P": [a, b]},
            nu={a: OTuple(n="x", peer=b), b: OTuple(n="x", peer=a)},
        )
        vi = psi(inst)
        assert len(vi.canonical_assignment()["P"]) == 1

    def test_oid_aliasing_resolved(self):
        schema = Schema(classes={"P": union(classref("P"), tuple_of(n=D))})
        a, b = Oid(), Oid()
        inst = Instance(schema, classes={"P": [a, b]}, nu={a: b, b: OTuple(n="x")})
        vi = psi(inst, VSchema({"P": tuple_of(n=D)}))
        keys = vi.canonical_assignment()["P"]
        assert len(keys) == 1  # a aliases b; duplicates collapse


class TestIQLv:
    def test_value_based_query(self):
        """A value-based identity query: copy Person into Clone via IQL,
        with φ/ψ around it (Figure 2)."""
        from repro.iql import Membership, NameTerm, Program, Rule, Var, Equality, TupleTerm

        vs = VSchema(
            {
                "Person": tuple_of(name=D, spouse=classref("Person")),
                "Clone": tuple_of(name=D, spouse=classref("Person")),
            }
        )
        vi = VInstance(vs)
        cyclic_pair(vi)
        schema = object_schema(vs)
        p = Var("p", classref("Person"))
        c = Var("c", classref("Clone"))
        n = Var("n", D)
        s = Var("s", classref("Person"))
        mapping = schema.with_names(
            relations={"Map": tuple_of(src=classref("Person"), dst=classref("Clone"))}
        )
        program = Program(
            mapping,
            stages=[
                [
                    Rule(
                        Membership(NameTerm("Map"), TupleTerm(src=p, dst=c)),
                        [Membership(NameTerm("Person"), p)],
                    )
                ],
                [
                    Rule(
                        Equality(c.hat(), TupleTerm(name=n, spouse=s)),
                        [
                            Membership(NameTerm("Map"), TupleTerm(src=p, dst=c)),
                            Equality(p.hat(), TupleTerm(name=n, spouse=s)),
                        ],
                    )
                ],
            ],
            input_names=["Person"],
            output_names=["Person", "Clone"],
        )
        out = run_iqlv(program, vi)
        assert out.canonical_assignment()["Clone"] == out.canonical_assignment()["Person"]
